//! Content addressing for JSON documents: canonical form and digest.
//!
//! The simulator is deterministic — identical resolved machine specs
//! produce bitwise-identical results — so a result is perfectly cacheable
//! under a key derived from its request. This module provides that key:
//!
//! * [`canonical`] rewrites a [`Json`] value into **canonical form**
//!   (object keys sorted lexicographically at every depth, last duplicate
//!   wins), so two spellings of the same document — a hand-written config
//!   file and a codec round-trip — collapse onto one byte string.
//! * [`digest`] hashes the canonical compact encoding into a 128-bit,
//!   32-hex-character content address with an in-tree mixing hash (the
//!   build is offline, so no external SHA crate; the digest is a cache
//!   key, not a cryptographic commitment).
//!
//! # Examples
//!
//! ```
//! use rmt_stats::json::parse;
//! use rmt_stats::digest::digest;
//!
//! let a = parse(r#"{"b": 1, "a": {"y": 2, "x": 3}}"#).unwrap();
//! let b = parse(r#"{"a": {"x": 3, "y": 2}, "b": 1}"#).unwrap();
//! assert_eq!(digest(&a), digest(&b)); // key order never matters
//!
//! let c = parse(r#"{"a": {"x": 4, "y": 2}, "b": 1}"#).unwrap();
//! assert_ne!(digest(&a), digest(&c)); // any value change does
//! ```

use crate::json::Json;

/// Rewrites `v` into canonical form: object keys sorted lexicographically
/// at every depth (stable sort; on duplicate keys the last occurrence
/// wins, matching [`Json::set`] semantics). Arrays keep their order —
/// element order is data.
pub fn canonical(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => {
            let mut out: Vec<(String, Json)> = Vec::with_capacity(fields.len());
            for (k, val) in fields {
                let cv = canonical(val);
                if let Some(slot) = out.iter_mut().find(|(ok, _)| ok == k) {
                    slot.1 = cv;
                } else {
                    out.push((k.clone(), cv));
                }
            }
            out.sort_by(|(a, _), (b, _)| a.cmp(b));
            Json::Obj(out)
        }
        Json::Arr(items) => Json::Arr(items.iter().map(canonical).collect()),
        other => other.clone(),
    }
}

/// The canonical compact encoding of `v`: [`canonical`] then
/// [`Json::encode`]. This is the byte string [`digest`] hashes.
pub fn canonical_encode(v: &Json) -> String {
    canonical(v).encode()
}

/// SplitMix64's finalizer: a full-avalanche 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hashes a byte string into two 64-bit lanes. Each 8-byte word is mixed
/// into both lanes with different multipliers and cross-fed, and the total
/// length participates in finalization so zero-padded tails cannot collide
/// with genuine trailing zero bytes.
pub fn digest_bytes(bytes: &[u8]) -> [u64; 2] {
    let mut h0: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h1: u64 = 0x6a09_e667_f3bc_c909;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let w = u64::from_le_bytes(word);
        h0 = mix64(h0 ^ w).wrapping_add(h1.rotate_left(23));
        h1 = mix64(h1 ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd)).wrapping_add(h0.rotate_left(41));
    }
    let len = bytes.len() as u64;
    h0 = mix64(h0 ^ len);
    h1 = mix64(h1 ^ len.wrapping_mul(0xc4ce_b9fe_1a85_ec53) ^ h0);
    [mix64(h0 ^ h1), mix64(h1.wrapping_add(h0.rotate_left(32)))]
}

/// The 128-bit content address of `v` as 32 lowercase hex characters:
/// [`digest_bytes`] over [`canonical_encode`]. Invariant under object-key
/// reordering; sensitive to any value, key-name, or structural change.
pub fn digest(v: &Json) -> String {
    let [a, b] = digest_bytes(canonical_encode(v).as_bytes());
    format!("{a:016x}{b:016x}")
}

/// True when `s` has the shape [`digest`] produces (32 lowercase hex
/// characters) — the validation servers apply to `/v1/results/<digest>`
/// path segments before touching the cache.
pub fn is_digest(s: &str) -> bool {
    s.len() == 32
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn canonical_sorts_keys_at_every_depth() {
        let v = parse(r#"{"z": {"b": 1, "a": 2}, "a": [ {"y": 1, "x": 2} ]}"#).unwrap();
        assert_eq!(
            canonical_encode(&v),
            r#"{"a":[{"x":2,"y":1}],"z":{"a":2,"b":1}}"#
        );
    }

    #[test]
    fn canonical_keeps_array_order() {
        let v = parse(r#"[3, 1, 2]"#).unwrap();
        assert_eq!(canonical_encode(&v), "[3,1,2]");
    }

    #[test]
    fn canonical_last_duplicate_wins() {
        // The strict parsers upstream reject duplicates, but canonical form
        // must still be well-defined for hand-assembled values.
        let v = Json::Obj(vec![("k".into(), Json::U64(1)), ("k".into(), Json::U64(2))]);
        assert_eq!(canonical_encode(&v), r#"{"k":2}"#);
    }

    #[test]
    fn digest_is_stable_and_well_formed() {
        let v = parse(r#"{"spec": {"core": 1}, "benches": ["gcc"]}"#).unwrap();
        let d = digest(&v);
        assert!(is_digest(&d), "{d}");
        assert_eq!(d, digest(&v), "digest must be a pure function");
    }

    #[test]
    fn digest_ignores_key_order_but_not_values() {
        let a = parse(r#"{"x": 1, "y": {"p": true, "q": null}}"#).unwrap();
        let b = parse(r#"{"y": {"q": null, "p": true}, "x": 1}"#).unwrap();
        assert_eq!(digest(&a), digest(&b));
        let c = parse(r#"{"x": 1, "y": {"p": false, "q": null}}"#).unwrap();
        assert_ne!(digest(&a), digest(&c));
    }

    #[test]
    fn digest_separates_padding_from_data() {
        // A zero tail byte and a shorter string must not collide through
        // the zero-padded final word.
        let a = digest_bytes(b"abc\0");
        let b = digest_bytes(b"abc");
        assert_ne!(a, b);
        // Same bytes split across the 8-byte word boundary differently.
        assert_ne!(digest_bytes(b"12345678"), digest_bytes(b"1234567"));
    }

    #[test]
    fn is_digest_rejects_other_shapes() {
        assert!(!is_digest(""));
        assert!(!is_digest("abc"));
        assert!(!is_digest(&"a".repeat(33)));
        assert!(!is_digest(&"Z".repeat(32)));
        assert!(!is_digest(&"A".repeat(32)), "uppercase hex is not ours");
        assert!(is_digest(&"0123456789abcdef0123456789abcdef".to_string()));
    }
}
