//! Named event counters.
//!
//! Simulator components expose their behaviour through [`Counter`]s grouped
//! in a [`CounterSet`]. Counters are plain `u64` accumulators with a stable
//! name, so experiment drivers can collect them generically.

use std::collections::BTreeMap;
use std::fmt;

/// A single monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use rmt_stats::Counter;
///
/// let mut retired = Counter::new("retired_instructions");
/// retired.add(8);
/// retired.inc();
/// assert_eq!(retired.value(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Resets the count to zero (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// An ordered collection of named counters.
///
/// Components create counters lazily by name; the set keeps them sorted so
/// reports are stable across runs.
///
/// # Examples
///
/// ```
/// use rmt_stats::CounterSet;
///
/// let mut cs = CounterSet::new();
/// cs.add("loads", 3);
/// cs.inc("loads");
/// assert_eq!(cs.get("loads"), 4);
/// assert_eq!(cs.get("stores"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by one, creating it if necessary.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `n`, creating it if necessary.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += n;
        } else {
            self.counters.insert(name.to_owned(), n);
        }
    }

    /// Returns the value of counter `name`, or zero if it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Resets every counter to zero (the names are retained).
    pub fn reset_all(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the set has no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Merges another counter set into this one, summing shared names.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name:<40} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic_ops() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn counter_display_nonempty() {
        let c = Counter::new("events");
        assert_eq!(format!("{c}"), "events = 0");
    }

    #[test]
    fn set_creates_on_demand() {
        let mut cs = CounterSet::new();
        assert_eq!(cs.get("nothing"), 0);
        cs.inc("a");
        cs.add("a", 2);
        assert_eq!(cs.get("a"), 3);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn set_reset_keeps_names() {
        let mut cs = CounterSet::new();
        cs.add("a", 5);
        cs.reset_all();
        assert_eq!(cs.get("a"), 0);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn set_iterates_in_name_order() {
        let mut cs = CounterSet::new();
        cs.inc("zeta");
        cs.inc("alpha");
        let names: Vec<&str> = cs.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn set_merge_sums() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = CounterSet::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn set_display_lists_counters() {
        let mut cs = CounterSet::new();
        cs.add("loads", 7);
        let text = format!("{cs}");
        assert!(text.contains("loads"));
        assert!(text.contains('7'));
    }
}
