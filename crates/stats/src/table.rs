//! Plain-text table rendering for the figure/table regeneration binaries.
//!
//! Every experiment driver prints its results through [`Table`] so that the
//! output of `cargo run -p rmt-bench --bin fig6_srt_single` looks like the
//! rows of the paper's figure.

use std::fmt;

/// A simple left-aligned text table with a header row.
///
/// # Examples
///
/// ```
/// use rmt_stats::Table;
///
/// let mut t = Table::new(vec!["benchmark".into(), "ipc".into()]);
/// t.row(vec!["gcc".into(), "1.23".into()]);
/// let s = t.to_string();
/// assert!(s.contains("benchmark"));
/// assert!(s.contains("gcc"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Self::new(cols.iter().map(|c| (*c).to_owned()).collect())
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Appends a row of displayable cells.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) {
        self.row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The cell at `(row, col)`, if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let fmt_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        fmt_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats an `f64` with 3 decimal places, the convention used in all
/// experiment outputs.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with one decimal place and a `%` sign.
pub fn fmt_pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = Table::with_columns(&["a", "bbbb"]);
        t.row(vec!["x".into(), "y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.row(vec!["1".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.cell(0, 1), Some(""));
        assert_eq!(t.cell(1, 2), None);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::with_columns(&["x", "y"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.cell(0, 0), Some("1.5"));
    }

    #[test]
    fn column_widths_grow_with_content() {
        let mut t = Table::with_columns(&["a"]);
        t.row(vec!["longvalue".into()]);
        let s = t.to_string();
        // Header line must be padded to the widest cell.
        assert!(s.lines().next().unwrap().len() >= "longvalue".len());
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        Table::new(vec![]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(31.96), "32.0%");
    }
}
