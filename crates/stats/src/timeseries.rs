//! Epoch-resolved metric time series.
//!
//! A [`TimeSeries`] is a sequence of [`MetricsSnapshot`] *deltas*, one per
//! fixed-width epoch of `every` cycles. Devices sample their metrics
//! registry at epoch boundaries and push the delta against the previous
//! boundary, turning end-of-run totals (issue-slot attribution, queue
//! occupancy, slack) into time-resolved telemetry. Collection is entirely
//! deterministic — epochs are keyed to the simulated cycle, not wall
//! clock — so a time series is bitwise identical at any `--jobs` count.

use crate::json::Json;
use crate::registry::MetricsSnapshot;

/// A sequence of per-epoch metric deltas sampled every `every` cycles.
///
/// # Examples
///
/// ```
/// use rmt_stats::timeseries::TimeSeries;
/// use rmt_stats::MetricsRegistry;
///
/// let mut ts = TimeSeries::new(1000);
/// let mut reg = MetricsRegistry::new();
/// reg.counter("core0/cycles", 1000);
/// ts.push(reg.snapshot());
/// assert_eq!(ts.len(), 1);
/// assert_eq!(ts.every(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    every: u64,
    epochs: Vec<MetricsSnapshot>,
}

impl TimeSeries {
    /// An empty series with epoch width `every` (0 means "not sampling").
    pub fn new(every: u64) -> TimeSeries {
        TimeSeries {
            every,
            epochs: Vec::new(),
        }
    }

    /// Epoch width in cycles (0 when sampling was disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Appends one epoch delta.
    pub fn push(&mut self, epoch: MetricsSnapshot) {
        self.epochs.push(epoch);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True when no epochs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The recorded epochs, oldest first.
    pub fn epochs(&self) -> &[MetricsSnapshot] {
        &self.epochs
    }

    /// Renders as `{"every": N, "epochs": [<snapshot>, ...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj().with("every", Json::U64(self.every)).with(
            "epochs",
            Json::Arr(self.epochs.iter().map(|e| e.to_json()).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn accumulates_epochs_in_order() {
        let mut ts = TimeSeries::new(500);
        for i in 0..3u64 {
            let mut reg = MetricsRegistry::new();
            reg.counter("x", i);
            ts.push(reg.snapshot());
        }
        assert_eq!(ts.len(), 3);
        let xs: Vec<u64> = ts
            .epochs()
            .iter()
            .map(|e| e.counter("x").unwrap())
            .collect();
        assert_eq!(xs, vec![0, 1, 2]);
    }

    #[test]
    fn json_shape_and_round_trip() {
        let mut ts = TimeSeries::new(250);
        let mut reg = MetricsRegistry::new();
        reg.counter("core0/cycles", 250);
        reg.gauge("rate", 0.5);
        ts.push(reg.snapshot());
        let j = ts.to_json();
        assert_eq!(j.get("every").unwrap().as_u64(), Some(250));
        let epochs = j.get("epochs").unwrap().as_array().unwrap();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].get("core0/cycles").unwrap().as_u64(), Some(250));
        let text = j.encode();
        assert_eq!(crate::json::parse(&text).unwrap(), j);
    }

    #[test]
    fn empty_series_is_sane() {
        let ts = TimeSeries::new(0);
        assert!(ts.is_empty());
        assert_eq!(ts.every(), 0);
        assert_eq!(
            ts.to_json()
                .get("epochs")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }
}
