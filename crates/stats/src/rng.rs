//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible across platforms and runs: the
//! lockstep device relies on two cores producing identical event streams, and
//! every experiment in EXPERIMENTS.md is keyed by a `(config, seed)` pair.
//! We therefore avoid external RNG crates (whose streams may change between
//! versions) and implement the well-known xoshiro256\*\* generator seeded via
//! SplitMix64, exactly as recommended by its authors.

/// A xoshiro256\*\* pseudo-random number generator.
///
/// Not cryptographically secure; used only for workload synthesis and fault
/// site selection. The stream is fully determined by the seed.
///
/// # Examples
///
/// ```
/// use rmt_stats::rng::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from(7);
/// let mut b = Xoshiro256::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including zero) produces a valid, full-period generator
    /// because the state is expanded through SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire's method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range() requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Picks an index according to the given non-negative weights.
    ///
    /// Returns the index of the chosen weight. Zero-weight entries are never
    /// chosen (unless all weights are zero, in which case index 0 is
    /// returned).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "pick_weighted() requires weights");
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem its own stream without coupling their consumption order.
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from(self.next_u64())
    }

    /// Creates the generator for job `index` of a campaign keyed by
    /// `seed` — see [`split_seed`]. Parallel sweeps give every job its own
    /// stream this way so results do not depend on scheduling order.
    pub fn for_job(seed: u64, index: u64) -> Xoshiro256 {
        Xoshiro256::seed_from(split_seed(seed, index))
    }
}

/// Splits a campaign seed into an independent per-job seed.
///
/// Each `(seed, index)` pair maps to a decorrelated 64-bit seed through two
/// rounds of SplitMix64, so job N's stream is the same whether the campaign
/// runs sequentially or fanned out across threads, and neighbouring indices
/// share no low-bit structure.
///
/// # Examples
///
/// ```
/// use rmt_stats::rng::split_seed;
///
/// assert_eq!(split_seed(7, 0), split_seed(7, 0));
/// assert_ne!(split_seed(7, 0), split_seed(7, 1));
/// assert_ne!(split_seed(7, 0), split_seed(8, 0));
/// ```
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed;
    let a = splitmix64(&mut s);
    let mut s2 = a ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = Xoshiro256::seed_from(123);
        let mut b = Xoshiro256::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xoshiro256::seed_from(9);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = Xoshiro256::seed_from(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_panics() {
        Xoshiro256::seed_from(0).below(0);
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut r = Xoshiro256::seed_from(77);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(31);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from(4);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = Xoshiro256::seed_from(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn pick_weighted_skips_zero_weights() {
        let mut r = Xoshiro256::seed_from(8);
        for _ in 0..200 {
            let idx = r.pick_weighted(&[0.0, 1.0, 0.0, 2.0]);
            assert!(idx == 1 || idx == 3);
        }
    }

    #[test]
    fn pick_weighted_all_zero_returns_first() {
        let mut r = Xoshiro256::seed_from(8);
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), 0);
    }

    #[test]
    fn pick_weighted_roughly_proportional() {
        let mut r = Xoshiro256::seed_from(21);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[r.pick_weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn split_seed_is_deterministic_and_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for index in 0..64u64 {
                assert_eq!(split_seed(seed, index), split_seed(seed, index));
                assert!(
                    seen.insert(split_seed(seed, index)),
                    "collision at ({seed}, {index})"
                );
            }
        }
    }

    #[test]
    fn for_job_matches_split_seed() {
        let mut a = Xoshiro256::for_job(3, 5);
        let mut b = Xoshiro256::seed_from(split_seed(3, 5));
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Xoshiro256::seed_from(1000);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn known_answer_vector_is_stable() {
        // Guards against accidental algorithm changes that would silently
        // invalidate recorded experiment results.
        let mut r = Xoshiro256::seed_from(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Xoshiro256::seed_from(0);
        let v2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(v, v2);
        // The first output must be non-zero (state expanded via splitmix).
        assert_ne!(v[0], 0);
    }
}
