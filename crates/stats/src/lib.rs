//! Statistics, metrics and deterministic randomness for the RMT simulator.
//!
//! This crate provides the measurement substrate shared by every other crate
//! in the workspace:
//!
//! * [`rng`] — a deterministic, dependency-free pseudo-random number
//!   generator ([`rng::Xoshiro256`]). Determinism matters here: lockstepped
//!   cores must produce bit-identical streams, and every experiment must be
//!   reproducible from a `(config, seed)` pair.
//! * [`check`] — a minimal property-test harness driven by [`rng`], used
//!   by the workspace's property tests (the build is offline, so no
//!   external property-testing crate).
//! * [`counter`] — named event counters and counter groups.
//! * [`histogram`] — fixed-bucket histograms used for store-lifetime and
//!   occupancy distributions.
//! * [`table`] — plain-text table rendering used by the figure/table
//!   regeneration binaries.
//! * [`metrics`] — IPC and SMT-efficiency (weighted speedup) computations,
//!   the paper's evaluation metric (§6.4).
//! * [`registry`] — the snapshot-oriented [`registry::MetricsRegistry`]
//!   with stable hierarchical metric names, the backbone of the
//!   machine-readable `results/*.json` outputs.
//! * [`json`] — serde-free JSON value tree, encoder, and parser (the build
//!   is offline, so no external JSON crate).
//! * [`digest`] — canonical-JSON form and a 128-bit content digest, the
//!   cache key of the `rmt-serve` result store (identical resolved specs
//!   hash identically regardless of key order).
//! * [`flight`] — a bounded, deterministic flight recorder of structured
//!   fault-forensics events with cause-chain ids.
//! * [`timeseries`] — epoch-resolved sequences of metric-snapshot deltas
//!   for time-series telemetry.
//!
//! # Examples
//!
//! ```
//! use rmt_stats::rng::Xoshiro256;
//! use rmt_stats::metrics::smt_efficiency;
//!
//! let mut rng = Xoshiro256::seed_from(42);
//! let _coin = rng.chance(0.5);
//!
//! // A thread that achieves 0.9 IPC in SMT mode and 1.2 IPC alone:
//! let eff = smt_efficiency(&[(0.9, 1.2)]);
//! assert!((eff - 0.75).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod counter;
pub mod digest;
pub mod estimate;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod rng;
pub mod table;
pub mod timeseries;

pub use counter::{Counter, CounterSet};
pub use digest::{canonical, canonical_encode, digest};
pub use estimate::{mean_ci95, Estimate};
pub use flight::{FlightEvent, FlightRecorder};
pub use histogram::Histogram;
pub use json::Json;
pub use metrics::{smt_efficiency, ThreadRun};
pub use registry::{HistogramSummary, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use rng::Xoshiro256;
pub use table::Table;
pub use timeseries::TimeSeries;
