//! Point estimates with confidence intervals for sampled simulation.
//!
//! SMARTS-style sampling measures a handful of short detailed windows and
//! reports their mean as the estimate of the full run's IPC. The windows
//! are (approximately) independent draws, so the normal-approximation
//! confidence interval `mean ± z * s / sqrt(n)` quantifies the sampling
//! error — the number the validation harness checks against the full-run
//! truth.

/// A sample-mean estimate with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (`1.96 * s / sqrt(n)`);
    /// zero when fewer than two samples exist.
    pub half_width: f64,
    /// Number of samples.
    pub n: usize,
}

impl Estimate {
    /// The half-width as a fraction of the mean (0.0 for a zero mean).
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Estimates the mean of `samples` with a 95% normal-approximation
/// confidence interval.
///
/// Returns a zero estimate for an empty slice. The sample standard
/// deviation uses the `n - 1` (Bessel) denominator.
pub fn mean_ci95(samples: &[f64]) -> Estimate {
    let n = samples.len();
    if n == 0 {
        return Estimate {
            mean: 0.0,
            half_width: 0.0,
            n: 0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return Estimate {
            mean,
            half_width: 0.0,
            n,
        };
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    Estimate {
        mean,
        half_width: 1.96 * (var / n as f64).sqrt(),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        let e = mean_ci95(&[]);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.n, 0);
        let e = mean_ci95(&[2.5]);
        assert_eq!(e.mean, 2.5);
        assert_eq!(e.half_width, 0.0);
        assert_eq!(e.relative_error(), 0.0);
    }

    #[test]
    fn constant_samples_have_zero_width() {
        let e = mean_ci95(&[1.5, 1.5, 1.5, 1.5]);
        assert_eq!(e.mean, 1.5);
        assert_eq!(e.half_width, 0.0);
    }

    #[test]
    fn known_interval() {
        // Samples 1..=4: mean 2.5, sample sd = sqrt(5/3).
        let e = mean_ci95(&[1.0, 2.0, 3.0, 4.0]);
        assert!((e.mean - 2.5).abs() < 1e-12);
        let expect = 1.96 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((e.half_width - expect).abs() < 1e-12, "{}", e.half_width);
        assert!((e.relative_error() - expect / 2.5).abs() < 1e-12);
    }

    #[test]
    fn tighter_with_more_samples() {
        let few = mean_ci95(&[1.0, 3.0]);
        let many = mean_ci95(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert!(many.half_width < few.half_width);
    }
}
