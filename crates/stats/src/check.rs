//! A minimal in-repo property-test harness.
//!
//! The workspace builds with no network access, so it cannot depend on an
//! external property-testing crate. This module provides the small subset
//! the test suite actually needs: run a property over N pseudo-random
//! cases drawn from a [`Xoshiro256`] stream, and on failure report the
//! case's seed so the exact input can be replayed (no shrinking — the
//! generators below are narrow enough that the failing case is readable
//! as-is).
//!
//! # Examples
//!
//! ```
//! use rmt_stats::check::run_cases;
//!
//! run_cases("addition commutes", 64, 0xadd, |rng| {
//!     let (a, b) = (rng.next_u64() >> 1, rng.next_u64() >> 1);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! To replay one failing case, seed a generator directly:
//!
//! ```text
//! property `lvq is an exact tag map` failed at case 17/64 (case seed 0x8c6e...)
//! replay with: Xoshiro256::seed_from(0x8c6e...)
//! ```

use crate::rng::{split_seed, Xoshiro256};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property; override with the
/// `RMT_PROP_CASES` environment variable.
pub const DEFAULT_CASES: u64 = 64;

/// Number of cases to run, honouring `RMT_PROP_CASES`.
pub fn cases_from_env(default: u64) -> u64 {
    std::env::var("RMT_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `property` over `cases` pseudo-random cases.
///
/// Case `i` receives a generator seeded with `split_seed(base_seed, i)`,
/// so every case is independent of how many cases run before it and the
/// whole property is reproducible from `(base_seed, i)`. On a panic inside
/// the property, the case index and case seed are printed and the panic is
/// re-raised, failing the test with its original message.
pub fn run_cases(name: &str, cases: u64, base_seed: u64, property: impl Fn(&mut Xoshiro256)) {
    let cases = cases_from_env(cases);
    for i in 0..cases {
        let case_seed = split_seed(base_seed, i);
        let mut rng = Xoshiro256::seed_from(case_seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!("property `{name}` failed at case {i}/{cases} (case seed {case_seed:#x})");
            eprintln!("replay with: Xoshiro256::seed_from({case_seed:#x})");
            resume_unwind(payload);
        }
    }
}

/// Draws a vector of `lo..hi` (inclusive bounds on length) elements.
pub fn gen_vec<T>(
    rng: &mut Xoshiro256,
    min_len: u64,
    max_len: u64,
    mut item: impl FnMut(&mut Xoshiro256) -> T,
) -> Vec<T> {
    let n = rng.range(min_len, max_len);
    (0..n).map(|_| item(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u64);
        run_cases("counts", 10, 1, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn failing_property_propagates_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_cases("fails", 10, 1, |rng| {
                assert!(rng.next_u64() % 2 == 0, "odd value");
            })
        }));
        assert!(r.is_err(), "the failing case must propagate");
    }

    #[test]
    fn cases_are_independent_of_count() {
        // Case 3 sees the same stream whether 4 or 40 cases run.
        let capture = |total: u64| {
            let got = std::cell::Cell::new(0u64);
            run_cases("indep", total, 99, |rng| {
                if got.get() == 0 {
                    got.set(rng.next_u64());
                }
            });
            got.get()
        };
        assert_eq!(capture(4), capture(40));
    }

    #[test]
    fn gen_vec_respects_bounds() {
        let mut rng = Xoshiro256::seed_from(2);
        for _ in 0..100 {
            let v = gen_vec(&mut rng, 1, 5, |r| r.next_u64());
            assert!((1..=5).contains(&v.len()));
        }
    }
}
