//! Property tests for the JSON codec's edge cases: escape-heavy strings,
//! deeply nested documents, and non-finite floats, driven by the in-repo
//! [`rmt_stats::check`] harness. The codec backs every committed artifact
//! and the `--jobs` determinism contract, so round-trip fidelity and
//! encoder determinism are load-bearing, not cosmetic.

use rmt_stats::check::{gen_vec, run_cases, DEFAULT_CASES};
use rmt_stats::json::{parse, Json};
use rmt_stats::rng::Xoshiro256;

/// Characters the encoder must escape (or pass through) correctly, biased
/// toward the nasty end: quotes, backslashes, every C0 control character
/// class the encoder distinguishes, multi-byte UTF-8 and astral-plane
/// characters (which exercise the surrogate-pair path when written as
/// `\u` escapes by other producers).
fn gen_string(rng: &mut Xoshiro256) -> String {
    const ALPHABET: &[char] = &[
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0000}',
        '\u{0008}',
        '\u{000c}',
        '\u{001f}',
        '\u{007f}',
        'a',
        'Z',
        '0',
        ' ',
        'é',
        'ß',
        '中',
        '\u{fffd}',
        '\u{10348}',
        '😀',
    ];
    gen_vec(rng, 0, 24, |r| *r.pick(ALPHABET))
        .into_iter()
        .collect()
}

/// A random JSON tree. `fuel` bounds the total node budget so trees stay
/// readable when a case fails; `I64` is only generated negative (the
/// parser canonicalizes non-negative integers to `U64`).
fn gen_tree(rng: &mut Xoshiro256, fuel: &mut u32) -> Json {
    *fuel = fuel.saturating_sub(1);
    let leaf_only = *fuel == 0;
    match rng.below(if leaf_only { 6 } else { 8 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.chance(0.5)),
        2 => Json::U64(rng.next_u64()),
        3 => Json::I64(-((rng.next_u64() >> 1).max(1) as i64)),
        4 => Json::F64(rng.next_f64() * 1e6 - 5e5),
        5 => Json::Str(gen_string(rng)),
        6 => Json::Arr(gen_vec(rng, 0, 4, |r| gen_tree(r, fuel))),
        _ => Json::Obj(
            gen_vec(rng, 0, 4, |r| (gen_string(r), gen_tree(r, fuel)))
                .into_iter()
                .collect(),
        ),
    }
}

#[test]
fn random_trees_round_trip_exactly() {
    run_cases("tree round-trip", DEFAULT_CASES, 0x7ee5, |rng| {
        let tree = gen_tree(rng, &mut 40);
        let compact = parse(&tree.encode()).expect("compact encoding must parse");
        assert_eq!(compact, tree, "compact round trip must be lossless");
        let pretty = parse(&tree.encode_pretty()).expect("pretty encoding must parse");
        assert_eq!(pretty, tree, "pretty round trip must be lossless");
    });
}

#[test]
fn escape_heavy_strings_round_trip_exactly() {
    run_cases("string escapes", DEFAULT_CASES, 0xe5c, |rng| {
        let s = gen_string(rng);
        let encoded = Json::Str(s.clone()).encode();
        // Everything below U+0020 must leave the document as an escape —
        // raw control bytes inside a string are invalid JSON.
        for b in encoded.as_bytes()[1..encoded.len() - 1].iter() {
            assert!(*b >= 0x20, "raw control byte {b:#04x} in {encoded}");
        }
        assert_eq!(parse(&encoded), Ok(Json::Str(s)));
    });
}

#[test]
fn unicode_escapes_parse_to_the_same_string_as_literals() {
    // `\u`-escaped text (including a surrogate pair for the astral plane)
    // must decode to the identical tree as the literal characters the
    // encoder emits.
    let escaped = r#""é 中 𐍈 ""#;
    let literal = Json::Str("é 中 \u{10348} \u{001f}".into());
    assert_eq!(parse(escaped), Ok(literal.clone()));
    assert_eq!(parse(&literal.encode()), Ok(literal));
}

#[test]
fn deeply_nested_documents_round_trip() {
    run_cases("deep nesting", DEFAULT_CASES, 0xdee9, |rng| {
        // Alternate arrays and single-key objects down to a random depth;
        // the parser is recursive, so this bounds its practical headroom.
        let depth = rng.range(1, 192);
        let mut doc = Json::U64(rng.next_u64());
        for level in 0..depth {
            doc = if level % 2 == 0 {
                Json::Arr(vec![doc])
            } else {
                Json::Obj(vec![("k".into(), doc)])
            };
        }
        assert_eq!(parse(&doc.encode()), Ok(doc.clone()));
        assert_eq!(parse(&doc.encode_pretty()), Ok(doc));
    });
}

#[test]
fn non_finite_floats_encode_as_null_deterministically() {
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::F64(v).encode(), "null");
        assert_eq!(Json::F64(v).encode_pretty(), "null\n");
        assert_eq!(parse(&Json::F64(v).encode()), Ok(Json::Null));
    }
    // Embedded in a document the substitution is positional, not global.
    let doc = Json::Arr(vec![Json::F64(f64::NAN), Json::F64(1.5)]);
    assert_eq!(doc.encode(), "[null,1.5]");
    run_cases("non-finite from arithmetic", DEFAULT_CASES, 0xf1f, |rng| {
        // Non-finite values produced by arithmetic (0/0, overflow, log of
        // a negative) must hit the same deterministic null path.
        let x = rng.next_f64() - 0.5;
        for bad in [
            0.0 * (x / 0.0),
            f64::MAX * 2.0 * x.signum(),
            (-x.abs() - 1.0).ln(),
        ] {
            assert!(!bad.is_finite());
            assert_eq!(Json::F64(bad).encode(), "null");
        }
    });
}
