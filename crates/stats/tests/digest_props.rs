//! Property tests for the content digest: the cache key of the serving
//! layer must be invariant under object-key reordering (two spellings of
//! one document share a cache slot) and sensitive to any value change (two
//! different documents never do). Driven by the in-repo
//! [`rmt_stats::check`] harness.

use rmt_stats::check::{gen_vec, run_cases, DEFAULT_CASES};
use rmt_stats::digest::{canonical_encode, digest, digest_bytes, is_digest};
use rmt_stats::json::{parse, Json};
use rmt_stats::rng::Xoshiro256;

/// A random JSON tree whose object keys are globally unique (`k<counter>`
/// plus a random suffix), so shuffling key order is always a pure
/// reordering and never a duplicate-key merge.
fn gen_tree(rng: &mut Xoshiro256, fuel: &mut u32, key_id: &mut u32) -> Json {
    *fuel = fuel.saturating_sub(1);
    let leaf_only = *fuel == 0;
    match rng.below(if leaf_only { 5 } else { 7 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.chance(0.5)),
        2 => Json::U64(rng.next_u64()),
        3 => Json::F64((rng.next_f64() * 1e6 - 5e5).trunc() + 0.5),
        4 => Json::Str(
            gen_vec(rng, 0, 8, |r| *r.pick(&['a', 'Z', '"', '\\', '中', ' ']))
                .into_iter()
                .collect(),
        ),
        5 => Json::Arr(gen_vec(rng, 0, 4, |r| gen_tree(r, fuel, key_id))),
        _ => Json::Obj(
            gen_vec(rng, 1, 4, |r| {
                *key_id += 1;
                let key = format!("k{}{}", *key_id, r.below(10));
                (key, gen_tree(r, fuel, key_id))
            })
            .into_iter()
            .collect(),
        ),
    }
}

/// Recursively shuffles the field order of every object in the tree.
fn shuffle_keys(rng: &mut Xoshiro256, v: &Json) -> Json {
    match v {
        Json::Obj(fields) => {
            let mut fields: Vec<(String, Json)> = fields
                .iter()
                .map(|(k, val)| (k.clone(), shuffle_keys(rng, val)))
                .collect();
            // Fisher–Yates with the harness RNG.
            for i in (1..fields.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                fields.swap(i, j);
            }
            Json::Obj(fields)
        }
        Json::Arr(items) => Json::Arr(items.iter().map(|x| shuffle_keys(rng, x)).collect()),
        other => other.clone(),
    }
}

/// Mutates one pseudo-randomly chosen node so the tree is guaranteed to
/// denote a different document (every arm changes the encoded value).
fn mutate_one(rng: &mut Xoshiro256, v: &mut Json) {
    match v {
        Json::Obj(fields) if !fields.is_empty() => {
            let i = rng.below(fields.len() as u64) as usize;
            mutate_one(rng, &mut fields[i].1);
        }
        Json::Arr(items) if !items.is_empty() => {
            let i = rng.below(items.len() as u64) as usize;
            mutate_one(rng, &mut items[i]);
        }
        Json::Null => *v = Json::Bool(false),
        Json::Bool(b) => *b = !*b,
        Json::U64(u) => *u = u.wrapping_add(1),
        Json::I64(i) => *i = i.wrapping_add(1),
        Json::F64(f) => *f = f.trunc() + if *f == f.trunc() + 0.5 { 0.25 } else { 0.5 },
        Json::Str(s) => s.push('x'),
        // Empty containers: replace the container itself.
        _ => *v = Json::U64(1),
    }
}

#[test]
fn digest_is_invariant_under_key_reordering() {
    run_cases("digest reorder invariance", DEFAULT_CASES, 0xd16e, |rng| {
        let tree = gen_tree(rng, &mut 40, &mut 0);
        let shuffled = shuffle_keys(rng, &tree);
        assert_eq!(
            canonical_encode(&tree),
            canonical_encode(&shuffled),
            "canonical form must not depend on key order"
        );
        assert_eq!(digest(&tree), digest(&shuffled));
    });
}

#[test]
fn digest_is_sensitive_to_any_value_change() {
    run_cases("digest value sensitivity", DEFAULT_CASES, 0xd16f, |rng| {
        let tree = gen_tree(rng, &mut 40, &mut 0);
        let mut mutated = tree.clone();
        mutate_one(rng, &mut mutated);
        assert_ne!(
            canonical_encode(&tree),
            canonical_encode(&mutated),
            "mutation must change the document"
        );
        assert_ne!(digest(&tree), digest(&mutated));
    });
}

#[test]
fn digest_survives_codec_round_trips() {
    run_cases("digest codec round trip", DEFAULT_CASES, 0xd170, |rng| {
        let tree = gen_tree(rng, &mut 40, &mut 0);
        let d = digest(&tree);
        assert!(is_digest(&d), "{d}");
        let compact = parse(&tree.encode()).expect("own encoding must parse");
        let pretty = parse(&tree.encode_pretty()).expect("own pretty encoding must parse");
        assert_eq!(digest(&compact), d, "compact round trip changed the digest");
        assert_eq!(digest(&pretty), d, "pretty round trip changed the digest");
    });
}

#[test]
fn byte_hash_separates_close_inputs() {
    run_cases("digest bytes avalanche", DEFAULT_CASES, 0xd171, |rng| {
        let bytes: Vec<u8> = gen_vec(rng, 1, 64, |r| r.next_u64() as u8);
        let base = digest_bytes(&bytes);
        // Single-bit flip anywhere must move the hash.
        let i = rng.below(bytes.len() as u64) as usize;
        let mut flipped = bytes.clone();
        flipped[i] ^= 1 << rng.below(8);
        assert_ne!(base, digest_bytes(&flipped));
        // Truncation by one byte must move the hash.
        assert_ne!(base, digest_bytes(&bytes[..bytes.len() - 1]));
        // Zero-extension must move the hash (padding vs. data).
        let mut extended = bytes.clone();
        extended.push(0);
        assert_ne!(base, digest_bytes(&extended));
    });
}
