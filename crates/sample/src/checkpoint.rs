//! Architectural checkpoints, serialized through the `rmt-stats` JSON
//! codec.
//!
//! A checkpoint captures everything a detailed window needs to re-enter a
//! fast-forwarded workload: the committed registers and PC, the absolute
//! committed-instruction count (so sample positions stay comparable
//! across restores), the architectural memory image, and a bounded log of
//! recent [`WarmEvent`]s for functional cache/predictor warming. Memory is
//! serialized page-wise (non-zero pages only, sorted by index, hex-encoded
//! contents), matching the zero-page-insensitive `MemImage::digest`.

use rmt_core::WarmEvent;
use rmt_isa::inst::NUM_ARCH_REGS;
use rmt_isa::MemImage;
use rmt_stats::Json;

/// A serializable architectural snapshot of one logical thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Committed architectural registers.
    pub regs: [u64; NUM_ARCH_REGS],
    /// Next PC to execute.
    pub pc: u64,
    /// Absolute committed-instruction count at the snapshot.
    pub committed: u64,
    /// Architectural memory at the snapshot.
    pub memory: MemImage,
    /// Recent warming events, oldest first.
    pub warm: Vec<WarmEvent>,
}

fn hex_encode(data: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(data.len() * 2);
    for &b in data {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex page".into());
    }
    let nib = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            other => Err(format!("invalid hex digit {:?}", other as char)),
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Ok(out)
}

fn warm_to_json(ev: &WarmEvent) -> Json {
    let arr = |items: Vec<Json>| Json::Arr(items);
    match *ev {
        WarmEvent::IFetch { addr } => arr(vec![Json::Str("if".into()), Json::U64(addr)]),
        WarmEvent::Load { addr } => arr(vec![Json::Str("ld".into()), Json::U64(addr)]),
        WarmEvent::Store { addr } => arr(vec![Json::Str("st".into()), Json::U64(addr)]),
        WarmEvent::Branch { pc, taken } => arr(vec![
            Json::Str("br".into()),
            Json::U64(pc),
            Json::Bool(taken),
        ]),
        WarmEvent::Jump { pc, target } => arr(vec![
            Json::Str("jp".into()),
            Json::U64(pc),
            Json::U64(target),
        ]),
    }
}

fn u64_at(items: &[Json], i: usize, what: &str) -> Result<u64, String> {
    items
        .get(i)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("warm event missing u64 {what}"))
}

fn warm_from_json(v: &Json) -> Result<WarmEvent, String> {
    let items = v.as_array().ok_or("warm event is not an array")?;
    let tag = items
        .first()
        .and_then(Json::as_str)
        .ok_or("warm event missing tag")?;
    match tag {
        "if" => Ok(WarmEvent::IFetch {
            addr: u64_at(items, 1, "addr")?,
        }),
        "ld" => Ok(WarmEvent::Load {
            addr: u64_at(items, 1, "addr")?,
        }),
        "st" => Ok(WarmEvent::Store {
            addr: u64_at(items, 1, "addr")?,
        }),
        "br" => Ok(WarmEvent::Branch {
            pc: u64_at(items, 1, "pc")?,
            taken: items
                .get(2)
                .and_then(Json::as_bool)
                .ok_or("branch event missing taken")?,
        }),
        "jp" => Ok(WarmEvent::Jump {
            pc: u64_at(items, 1, "pc")?,
            target: u64_at(items, 2, "target")?,
        }),
        other => Err(format!("unknown warm event tag {other:?}")),
    }
}

impl Checkpoint {
    /// Serializes to a JSON value tree.
    pub fn to_json(&self) -> Json {
        let pages = self
            .memory
            .pages_sorted()
            .into_iter()
            .map(|(idx, data)| {
                Json::obj()
                    .with("index", Json::U64(idx))
                    .with("data", Json::Str(hex_encode(data)))
            })
            .collect();
        Json::obj()
            .with("committed", Json::U64(self.committed))
            .with("pc", Json::U64(self.pc))
            .with(
                "regs",
                Json::Arr(self.regs.iter().map(|&r| Json::U64(r)).collect()),
            )
            .with("pages", Json::Arr(pages))
            .with(
                "warm",
                Json::Arr(self.warm.iter().map(warm_to_json).collect()),
            )
    }

    /// Rebuilds a checkpoint from [`Self::to_json`]'s layout.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing key {k:?}"));
        let committed = field("committed")?
            .as_u64()
            .ok_or("committed is not a u64")?;
        let pc = field("pc")?.as_u64().ok_or("pc is not a u64")?;
        let regs_arr = field("regs")?.as_array().ok_or("regs is not an array")?;
        if regs_arr.len() != NUM_ARCH_REGS {
            return Err(format!(
                "expected {NUM_ARCH_REGS} registers, found {}",
                regs_arr.len()
            ));
        }
        let mut regs = [0u64; NUM_ARCH_REGS];
        for (i, r) in regs_arr.iter().enumerate() {
            regs[i] = r.as_u64().ok_or_else(|| format!("reg {i} is not a u64"))?;
        }
        let mut memory = MemImage::new();
        for (i, p) in field("pages")?
            .as_array()
            .ok_or("pages is not an array")?
            .iter()
            .enumerate()
        {
            let idx = p
                .get("index")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("page {i} missing index"))?;
            let data = hex_decode(
                p.get("data")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("page {i} missing data"))?,
            )?;
            if data.len() != MemImage::PAGE_BYTES {
                return Err(format!("page {i} has {} bytes", data.len()));
            }
            memory.install_page(idx, &data);
        }
        let warm = field("warm")?
            .as_array()
            .ok_or("warm is not an array")?
            .iter()
            .map(warm_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint {
            regs,
            pc,
            committed,
            memory,
            warm,
        })
    }

    /// Serializes to JSON text.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Parses JSON text produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first parse or structural problem.
    pub fn decode(text: &str) -> Result<Self, String> {
        let v = rmt_stats::json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        let mut memory = MemImage::new();
        memory.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        memory.write_u8(0x7fff, 0x5a);
        let mut regs = [0u64; NUM_ARCH_REGS];
        regs[1] = 42;
        regs[NUM_ARCH_REGS - 1] = u64::MAX;
        Checkpoint {
            regs,
            pc: 0x120,
            committed: 9_999,
            memory,
            warm: vec![
                WarmEvent::IFetch { addr: 0x120 },
                WarmEvent::Load { addr: 0x1000 },
                WarmEvent::Store { addr: 0x2000 },
                WarmEvent::Branch {
                    pc: 0x124,
                    taken: true,
                },
                WarmEvent::Jump {
                    pc: 0x128,
                    target: 0x40,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let cp = sample_checkpoint();
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.memory.digest(), cp.memory.digest());
    }

    #[test]
    fn zero_pages_are_not_serialized() {
        let mut cp = sample_checkpoint();
        cp.memory.write_u8(0x9_0000, 0); // touch a page with zeros only
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back.memory.digest(), cp.memory.digest());
        assert!(back.memory.page_count() < cp.memory.page_count());
    }

    #[test]
    fn structural_errors_are_reported() {
        let cp = sample_checkpoint();
        let mut v = cp.to_json();
        v.set("regs", Json::Arr(vec![Json::U64(1)]));
        assert!(Checkpoint::from_json(&v).unwrap_err().contains("registers"));
        assert!(Checkpoint::decode("{").is_err());
        assert!(Checkpoint::decode("{}").unwrap_err().contains("committed"));
    }

    #[test]
    fn hex_codec_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("0").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
