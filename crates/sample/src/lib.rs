//! SMARTS-style sampled simulation over the redundancy fabric.
//!
//! Full cycle-accurate runs of every figure grow linearly with each new
//! arrangement the fabric makes cheap to add. Classic sampled-simulation
//! methodology (SMARTS; see PAPERS.md) cuts that cost by an order of
//! magnitude: fast-forward the workload *functionally*, open a handful of
//! short *detailed windows* at planned positions, and report the window
//! mean with an explicit confidence interval.
//!
//! This crate supplies the three sampling-specific pieces; the experiment
//! harness in `rmt-sim` composes them with the existing `Machine` fabric:
//!
//! * [`checkpoint::Checkpoint`] — a serializable architectural snapshot
//!   (registers + PC + memory image + a bounded functional-warming log),
//!   written and read through the `rmt-stats` JSON codec so a workload is
//!   fast-forwarded once and re-entered at any sample point by any
//!   device kind.
//! * [`fastfwd::FastForward`] — the functional fast-forward engine: it
//!   drives the `rmt-isa` reference interpreter between detailed windows
//!   while recording the recent instruction/data/branch activity that
//!   warms caches and predictors at window entry.
//! * [`plan::SamplePlan`] — the sampling controller's configuration:
//!   periodic or seeded-random window positions, detailed warmup and
//!   measure lengths, and the warming-log depth.
//!
//! # Examples
//!
//! ```
//! use rmt_sample::{Checkpoint, FastForward, SamplePlan};
//! use rmt_isa::{MemImage, Program, ProgramBuilder};
//! use rmt_isa::inst::{Inst, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.label("spin");
//! b.push(Inst::addi(Reg::new(1), Reg::new(1), 1));
//! b.push_branch(Inst::j(0), "spin");
//! let p = b.build().unwrap();
//!
//! let mut ff = FastForward::new(&p, MemImage::new(), 64);
//! ff.run_to(100).unwrap();
//! let cp = ff.checkpoint();
//! assert_eq!(cp.committed, 100);
//!
//! // Round-trip through the JSON codec: the restored checkpoint is the
//! // one that was saved.
//! let restored = Checkpoint::decode(&cp.encode()).unwrap();
//! assert_eq!(restored, cp);
//!
//! let plan = SamplePlan::default();
//! let positions = plan.positions(1_000, 8_000);
//! assert_eq!(positions.len(), plan.windows);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fastfwd;
pub mod plan;

pub use checkpoint::Checkpoint;
pub use fastfwd::FastForward;
pub use plan::{SampleMode, SamplePlan};
