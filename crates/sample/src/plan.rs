//! Sampling plans: where the detailed windows go and how long they run.

use rmt_stats::Xoshiro256;

/// How window positions are chosen within the measured interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Evenly spaced windows (SMARTS' systematic sampling).
    Periodic,
    /// Seeded uniform-random positions, sorted ascending. Deterministic
    /// for a given seed.
    Random {
        /// Seed for the position stream.
        seed: u64,
    },
}

/// Configuration of one sampled run.
///
/// Each window fast-forwards to `position - warmup`, replays the warming
/// log, runs `warmup` committed instructions of detailed simulation to
/// settle pipeline state, then measures IPC over the `measure` committed
/// instructions starting exactly at its position. The estimator
/// aggregates the per-window IPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePlan {
    /// Number of detailed windows.
    pub windows: usize,
    /// Detailed (unmeasured) warmup instructions per window.
    pub warmup: u64,
    /// Detailed measured instructions per window.
    pub measure: u64,
    /// Functional warming-log depth (events replayed at window entry).
    pub warm_window: usize,
    /// Window placement policy.
    pub mode: SampleMode,
}

impl Default for SamplePlan {
    /// The validated default: 8 periodic windows of 600 warmup + 2k
    /// measured instructions with a 128k-event warming log. With draining
    /// checkpoints the deep log costs one replay of the whole fast-forward
    /// stream per run, and buys absolute cache/predictor warmth — the
    /// efficiency ratios are biased without it (see
    /// `results/sampling_validation.json` for the measured error).
    fn default() -> Self {
        SamplePlan {
            windows: 8,
            warmup: 600,
            measure: 2_000,
            warm_window: 131_072,
            mode: SampleMode::Periodic,
        }
    }
}

impl SamplePlan {
    /// Builds the runnable plan from its config-as-data mirror, the
    /// `sample` section of an `rmt_core::MachineSpec` (this crate depends
    /// on `rmt-core`, not the other way around, so the conversion lives
    /// here).
    pub fn from_spec(spec: &rmt_core::SampleSpec) -> Self {
        SamplePlan {
            windows: spec.windows,
            warmup: spec.warmup,
            measure: spec.measure,
            warm_window: spec.warm_window,
            mode: match spec.mode {
                rmt_core::SampleModeSpec::Periodic => SampleMode::Periodic,
                rmt_core::SampleModeSpec::Random { seed } => SampleMode::Random { seed },
            },
        }
    }

    /// Detailed instructions simulated per window.
    pub fn window_len(&self) -> u64 {
        self.warmup + self.measure
    }

    /// The absolute committed-instruction positions at which each window's
    /// *measured* portion begins, within the sampled interval
    /// `[start, start + span)`, sorted ascending. Each window's detailed
    /// warmup runs over the `warmup` instructions *preceding* its
    /// position (clamped at instruction 0), so the measured instructions
    /// always lie inside the interval — and a one-window plan positioned
    /// at `start == warmup` measures exactly the interval a full run
    /// measures.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no windows or the measured portion does not
    /// fit `span`.
    pub fn positions(&self, start: u64, span: u64) -> Vec<u64> {
        assert!(self.windows > 0, "a plan needs at least one window");
        assert!(
            self.measure <= span,
            "measured window ({}) longer than the sampled interval ({span})",
            self.measure
        );
        let slack = span - self.measure;
        let mut out: Vec<u64> = match self.mode {
            // Window i starts at the beginning of the i-th of `windows`
            // equal strides, so coverage spans the whole interval and the
            // last window still fits.
            SampleMode::Periodic => (0..self.windows)
                .map(|i| start + (slack * i as u64) / self.windows.max(1) as u64)
                .collect(),
            SampleMode::Random { seed } => {
                let mut rng = Xoshiro256::seed_from(seed);
                (0..self.windows)
                    .map(|_| start + rng.below(slack + 1))
                    .collect()
            }
        };
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_mirrors_its_spec() {
        let spec = rmt_core::SampleSpec::default();
        assert_eq!(SamplePlan::from_spec(&spec), SamplePlan::default());
        let random = rmt_core::SampleSpec {
            windows: 3,
            mode: rmt_core::SampleModeSpec::Random { seed: 9 },
            ..spec
        };
        let plan = SamplePlan::from_spec(&random);
        assert_eq!(plan.windows, 3);
        assert_eq!(plan.mode, SampleMode::Random { seed: 9 });
    }

    #[test]
    fn periodic_positions_are_sorted_and_fit() {
        let plan = SamplePlan::default();
        let ps = plan.positions(40_000, 80_000);
        assert_eq!(ps.len(), plan.windows);
        assert!(ps.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ps[0], 40_000);
        assert!(*ps.last().unwrap() + plan.measure <= 120_000);
    }

    #[test]
    fn random_positions_are_deterministic_per_seed() {
        let plan = SamplePlan {
            mode: SampleMode::Random { seed: 7 },
            ..SamplePlan::default()
        };
        let a = plan.positions(1_000, 50_000);
        let b = plan.positions(1_000, 50_000);
        assert_eq!(a, b);
        let other = SamplePlan {
            mode: SampleMode::Random { seed: 8 },
            ..plan
        };
        assert_ne!(a, other.positions(1_000, 50_000));
        for &p in &a {
            assert!(p >= 1_000 && p + plan.measure <= 51_000);
        }
    }

    #[test]
    #[should_panic(expected = "longer than the sampled interval")]
    fn oversized_window_panics() {
        SamplePlan::default().positions(0, 100);
    }
}
