//! Functional fast-forward between detailed windows.
//!
//! Drives the `rmt-isa` reference interpreter — the golden model the
//! detailed pipeline is differentially tested against — to a target
//! committed-instruction count, recording the most recent instruction,
//! data and control activity as [`WarmEvent`]s. A [`Checkpoint`] taken at
//! any point re-enters the workload with warm-ish caches and predictors
//! instead of pathologically cold ones.

use crate::checkpoint::Checkpoint;
use rmt_core::WarmEvent;
use rmt_isa::interp::{ArchState, Interpreter, StopReason};
use rmt_isa::{MemImage, Op, Program};
use std::collections::VecDeque;

/// The functional fast-forward engine for one logical thread.
pub struct FastForward<'p> {
    interp: Interpreter<'p>,
    warm: VecDeque<WarmEvent>,
    warm_window: usize,
}

impl<'p> FastForward<'p> {
    /// Starts fast-forwarding `program` from its entry point over
    /// `memory`, keeping the most recent `warm_window` warming events.
    pub fn new(program: &'p Program, memory: MemImage, warm_window: usize) -> Self {
        FastForward {
            interp: Interpreter::new(program, memory),
            warm: VecDeque::with_capacity(warm_window),
            warm_window,
        }
    }

    /// Resumes fast-forwarding from a checkpoint (same program), with the
    /// checkpoint's warming log carried over and re-bounded to
    /// `warm_window`.
    pub fn resume(program: &'p Program, cp: &Checkpoint, warm_window: usize) -> Self {
        let keep = cp.warm.len().saturating_sub(warm_window);
        FastForward {
            interp: Interpreter::resume(
                program,
                cp.memory.clone(),
                ArchState::from_parts(cp.regs, cp.pc),
                cp.committed,
            ),
            warm: cp.warm[keep..].iter().copied().collect(),
            warm_window,
        }
    }

    /// Absolute committed-instruction count.
    pub fn committed(&self) -> u64 {
        self.interp.committed()
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.interp.is_halted()
    }

    fn push(&mut self, ev: WarmEvent) {
        if self.warm_window == 0 {
            return;
        }
        if self.warm.len() == self.warm_window {
            self.warm.pop_front();
        }
        self.warm.push_back(ev);
    }

    fn step_once(&mut self) -> Result<(), StopReason> {
        let c = self.interp.step()?;
        let next = self.interp.state().pc();
        self.push(WarmEvent::IFetch { addr: c.pc });
        if let Some((addr, _, _)) = c.load {
            self.push(WarmEvent::Load { addr });
        }
        if let Some((addr, _, _)) = c.store {
            self.push(WarmEvent::Store { addr });
        }
        if c.inst.op.is_cond_branch() {
            self.push(WarmEvent::Branch {
                pc: c.pc,
                taken: next != c.pc.wrapping_add(4),
            });
        } else if c.inst.op == Op::Jalr {
            self.push(WarmEvent::Jump {
                pc: c.pc,
                target: next,
            });
        }
        Ok(())
    }

    /// Fast-forwards until the absolute committed count reaches `target`.
    ///
    /// # Errors
    ///
    /// Returns [`StopReason::Halted`] if the program halts first (a sample
    /// position beyond the program's run length), or propagates
    /// [`StopReason::PcOutOfRange`].
    pub fn run_to(&mut self, target: u64) -> Result<(), StopReason> {
        while self.interp.committed() < target {
            if self.interp.is_halted() {
                return Err(StopReason::Halted);
            }
            self.step_once()?;
        }
        Ok(())
    }

    /// Snapshots the current architectural state and warming log.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: *self.interp.state().regs(),
            pc: self.interp.state().pc(),
            committed: self.interp.committed(),
            memory: self.interp.mem().clone(),
            warm: self.warm.iter().copied().collect(),
        }
    }

    /// Like [`FastForward::checkpoint`], but drains the warming log: the
    /// checkpoint carries the events recorded since the previous drain
    /// (bounded by `warm_window`) and the log restarts empty. A sampled
    /// run taking consecutive draining checkpoints replays the whole
    /// fast-forward stream exactly once across its windows — cumulative
    /// warming without re-replaying shared history at every window.
    pub fn take_checkpoint(&mut self) -> Checkpoint {
        let cp = self.checkpoint();
        self.warm.clear();
        cp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_isa::inst::{Inst, Reg};
    use rmt_isa::ProgramBuilder;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// A loop that loads, stores, branches and calls, to exercise every
    /// warm-event kind.
    fn busy_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Inst::addi(r(1), Reg::ZERO, 0)); // i = 0
        b.push(Inst::addi(r(2), Reg::ZERO, 1_000_000)); // n
        b.label("loop");
        b.push(Inst::sw(r(1), r(1), 0x4000)); // store to a moving address
        b.push(Inst::lw(r(3), r(1), 0x4000)); // load it back
        b.push_branch(Inst::jal(Reg::RA, 0), "sub"); // call
        b.label("cont");
        b.push(Inst::addi(r(1), r(1), 8));
        b.push_branch(Inst::blt(r(1), r(2), 0), "loop");
        b.push(Inst::halt());
        b.label("sub");
        b.push(Inst::addi(r(4), r(4), 1));
        b.push(Inst::jalr(Reg::ZERO, Reg::RA)); // indirect return
        b.build().unwrap()
    }

    #[test]
    fn run_to_reaches_exact_count() {
        let p = busy_program();
        let mut ff = FastForward::new(&p, MemImage::new(), 128);
        ff.run_to(500).unwrap();
        assert_eq!(ff.committed(), 500);
        ff.run_to(777).unwrap();
        assert_eq!(ff.committed(), 777);
    }

    #[test]
    fn warm_log_is_bounded_and_covers_all_kinds() {
        let p = busy_program();
        let mut ff = FastForward::new(&p, MemImage::new(), 64);
        ff.run_to(1_000).unwrap();
        let cp = ff.checkpoint();
        assert_eq!(cp.warm.len(), 64);
        let has = |f: fn(&WarmEvent) -> bool| cp.warm.iter().any(f);
        assert!(has(|e| matches!(e, WarmEvent::IFetch { .. })));
        assert!(has(|e| matches!(e, WarmEvent::Load { .. })));
        assert!(has(|e| matches!(e, WarmEvent::Store { .. })));
        assert!(has(|e| matches!(e, WarmEvent::Branch { .. })));
        assert!(has(|e| matches!(e, WarmEvent::Jump { .. })));
    }

    #[test]
    fn checkpoint_resume_equals_straight_through() {
        let p = busy_program();
        let mut straight = FastForward::new(&p, MemImage::new(), 32);
        straight.run_to(2_000).unwrap();

        let mut first = FastForward::new(&p, MemImage::new(), 32);
        first.run_to(700).unwrap();
        // Round-trip the checkpoint through the JSON codec on the way.
        let cp = Checkpoint::decode(&first.checkpoint().encode()).unwrap();
        let mut resumed = FastForward::resume(&p, &cp, 32);
        resumed.run_to(2_000).unwrap();

        let (a, b) = (straight.checkpoint(), resumed.checkpoint());
        assert_eq!(a.regs, b.regs);
        assert_eq!(a.pc, b.pc);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.memory.digest(), b.memory.digest());
    }

    #[test]
    fn halting_before_target_is_an_error() {
        let p = Program::from_insts(vec![Inst::nop(), Inst::halt()]);
        let mut ff = FastForward::new(&p, MemImage::new(), 8);
        assert_eq!(ff.run_to(100), Err(StopReason::Halted));
        assert!(ff.is_halted());
    }
}
