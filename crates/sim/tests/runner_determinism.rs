//! The determinism contract of `rmt_sim::runner`: `--jobs N` must not
//! change a single result bit. Whole figures and whole fault campaigns are
//! compared between a sequential context and an oversubscribed parallel
//! one (more workers than this host has cores, so stealing actually
//! happens).

use rmt_core::device::SrtOptions;
use rmt_faults::{run_srt_campaign, CampaignConfig, FaultKind};
use rmt_sample::SamplePlan;
use rmt_sim::figures::{self, FigureCtx};
use rmt_sim::runner::{par_srt_campaign, par_srt_forensics};
use rmt_sim::{Runner, SimScale};
use rmt_workloads::{Benchmark, Workload};

#[test]
fn fig6_is_identical_at_any_job_count() {
    let benches = [Benchmark::M88ksim, Benchmark::Ijpeg];
    let scale = SimScale::quick();
    let seq = figures::fig6_srt_single(&FigureCtx::sequential(), scale, &benches);
    let par = figures::fig6_srt_single(&FigureCtx::new(8), scale, &benches);
    // Tables compare cell-by-cell (formatted strings), so even a
    // last-digit wobble in any efficiency fails here.
    assert_eq!(seq.table, par.table, "fig6 table differs across --jobs");
    assert_eq!(seq.summary.len(), par.summary.len());
    for (k, v) in &seq.summary {
        assert_eq!(
            v.to_bits(),
            par.summary[k].to_bits(),
            "summary `{k}` differs bitwise across --jobs"
        );
    }
    // The embedded metric snapshots — every counter, gauge and histogram
    // summary of every run — must also be bitwise identical. Structural
    // equality first, then the rendered JSON (which is what `--json`
    // persists) character-for-character.
    assert_eq!(seq.metrics, par.metrics, "metrics differ across --jobs");
    assert!(!seq.metrics.is_empty(), "fig6 must embed metric snapshots");
    for (key, snap) in &seq.metrics {
        assert_eq!(
            snap.to_json().encode(),
            par.metrics[key].to_json().encode(),
            "metrics JSON for `{key}` differs across --jobs"
        );
    }
}

#[test]
fn sampled_fig6_is_identical_at_any_job_count() {
    // The sampled figure fans checkpoint ladders and window runs across
    // the runner in two phases; both must honour the same bitwise
    // `--jobs` contract as the full figure.
    let benches = [Benchmark::M88ksim, Benchmark::Ijpeg];
    let scale = SimScale::quick();
    let plan = SamplePlan {
        windows: 3,
        warmup: 300,
        measure: 800,
        warm_window: 1_024,
        ..SamplePlan::default()
    };
    let seq = figures::fig6_srt_single_sampled(&FigureCtx::sequential(), scale, &plan, &benches);
    let par = figures::fig6_srt_single_sampled(&FigureCtx::new(8), scale, &plan, &benches);
    assert_eq!(
        seq.table, par.table,
        "sampled fig6 table differs across --jobs"
    );
    assert_eq!(seq.summary.len(), par.summary.len());
    for (k, v) in &seq.summary {
        assert_eq!(
            v.to_bits(),
            par.summary[k].to_bits(),
            "sampled summary `{k}` differs bitwise across --jobs"
        );
    }
}

#[test]
fn srt_campaign_is_identical_sequential_and_parallel() {
    let w = Workload::generate(Benchmark::M88ksim, 2);
    let cfg = CampaignConfig {
        injections: 6,
        warmup_commits: 800,
        window_commits: 5_000,
        seed: 11,
    };
    let kind = FaultKind::TransientReg;
    let seq = run_srt_campaign(SrtOptions::default(), &w, kind, cfg);
    let par = par_srt_campaign(&Runner::new(8), &SrtOptions::default(), &w, kind, cfg);
    // `CampaignReport` equality covers the outcome counts *and* the
    // detection-latency histogram bin-by-bin.
    assert_eq!(seq, par, "campaign report differs across worker counts");
}

#[test]
fn epoch_timeseries_is_identical_at_any_job_count() {
    // `RunResult::timeseries` is cycle-aligned, so the per-epoch deltas a
    // figure embeds must be bitwise identical at `--jobs 1` and `--jobs 8`
    // — every counter of every epoch of every cell.
    let benches = [Benchmark::M88ksim, Benchmark::Ijpeg];
    let scale = SimScale::quick();
    let seq = figures::fig6_srt_single(&FigureCtx::sequential().with_epoch(1_024), scale, &benches);
    let par = figures::fig6_srt_single(&FigureCtx::new(8).with_epoch(1_024), scale, &benches);
    assert!(
        !seq.timeseries.is_empty(),
        "epoch sampling must populate the figure's time series"
    );
    assert_eq!(
        seq.timeseries.keys().collect::<Vec<_>>(),
        par.timeseries.keys().collect::<Vec<_>>(),
        "time-series keys differ across --jobs"
    );
    for (key, series) in &seq.timeseries {
        assert_eq!(
            series.to_json().encode(),
            par.timeseries[key].to_json().encode(),
            "time series for `{key}` differs across --jobs"
        );
    }
    // Sampling must not perturb the figure itself.
    let plain = figures::fig6_srt_single(&FigureCtx::new(8), scale, &benches);
    assert_eq!(seq.table, plain.table, "epoch sampling perturbed the run");
    assert!(plain.timeseries.is_empty());
}

#[test]
fn forensic_campaign_is_identical_sequential_and_parallel() {
    let w = Workload::generate(Benchmark::Compress, 2);
    let cfg = CampaignConfig {
        injections: 4,
        warmup_commits: 800,
        window_commits: 5_000,
        seed: 21,
    };
    let kind = FaultKind::TransientSq;
    let opts = SrtOptions::default();
    let seq = par_srt_forensics(&Runner::new(1), &opts, &w, kind, cfg);
    let par = par_srt_forensics(&Runner::new(8), &opts, &w, kind, cfg);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        // Structural equality plus the serialized record — the bytes that
        // land in results/fault_forensics.json.
        assert_eq!(a, b, "forensic record differs across worker counts");
        assert_eq!(a.to_json().encode(), b.to_json().encode());
    }
}
