//! Experiment harness: builds devices, runs warmup/measurement intervals,
//! and regenerates every table and figure of the paper's evaluation.
//!
//! * [`experiment`] — the [`Experiment`] builder: one device configuration
//!   running one set of benchmarks for a measured interval.
//! * [`baseline`] — cached single-thread base-processor IPCs, the
//!   denominators of the paper's SMT-efficiency metric (§6.4).
//! * [`figures`] — one function per reproduced table/figure; each returns a
//!   [`rmt_stats::Table`] whose rows mirror the paper's artifact. The
//!   `rmt-bench` binaries print these.
//! * [`runner`] — the deterministic work-stealing job pool that fans a
//!   figure's independent data points (experiments, fault injections)
//!   across worker threads with bitwise-identical results at any
//!   `--jobs` level.
//! * [`sampled`] — SMARTS-style sampled runs: functional fast-forward,
//!   checkpointed window re-entry, and per-window IPC estimators with
//!   confidence intervals.
//! * [`service`] — job-granular service entry points: a validated
//!   run/sweep request with a canonical content digest and a synchronous
//!   `execute`, the unit of work the `rmt-serve` daemon queues and caches.
//!
//! # Examples
//!
//! ```
//! use rmt_sim::{DeviceKind, Experiment};
//! use rmt_workloads::Benchmark;
//!
//! let r = Experiment::new(DeviceKind::Srt)
//!     .benchmark(Benchmark::M88ksim)
//!     .warmup(1_000)
//!     .measure(4_000)
//!     .run()
//!     .unwrap();
//! assert!(r.ipc(0) > 0.0);
//! assert_eq!(r.faults_detected(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiment;
pub mod figures;
pub mod guard;
pub mod outcome;
pub mod runner;
pub mod sampled;
pub mod service;

pub use baseline::BaselineCache;
pub use experiment::{DeviceKind, Experiment, RunResult, SimError, VerifiedRun, VerifyError};
pub use figures::{FigureCtx, FigureResult, SimScale};
pub use runner::{ProgressSink, Runner};
pub use sampled::{CheckpointLadder, SampledResult};
pub use service::ServiceRequest;
