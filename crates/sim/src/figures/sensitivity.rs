//! Declarative sensitivity sweeps: a sweep file names a base machine
//! spec, one or more axes of dotted key paths, and a value list per axis;
//! the driver fans every `(axis value, benchmark)` cell through the
//! deterministic runner and reports SMT efficiency per cell against the
//! shared Base denominators.
//!
//! Each axis is swept *independently* from the base spec (one knob moves
//! at a time — the paper's sensitivity-study style, e.g. the slack-fetch
//! and store-queue curves behind §4.2/§4.4), and every row records the
//! fully resolved [`MachineSpec`] it ran, so a result file is
//! self-describing.

use super::{FigureCtx, FigureResult, SimScale};
use crate::experiment::Experiment;
use rmt_core::spec::{DeviceKind, MachineSpec};
use rmt_stats::metrics::mean;
use rmt_stats::table::fmt3;
use rmt_stats::{Json, Table};
use rmt_workloads::profile::ALL_BENCHMARKS;
use rmt_workloads::Benchmark;
use std::collections::BTreeMap;

/// One sweep axis: a dotted spec key path and the values to try.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Dotted key path into the machine spec (`"core.sq_entries"`).
    pub path: String,
    /// Values to assign, in sweep order.
    pub values: Vec<Json>,
}

/// A parsed sweep file: base machine, benchmarks, axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Sweep name (titles the output document).
    pub name: String,
    /// The spec every axis starts from.
    pub base: MachineSpec,
    /// Benchmarks each cell runs (single-benchmark rows).
    pub benches: Vec<Benchmark>,
    /// The axes, swept independently from `base`.
    pub axes: Vec<SweepAxis>,
}

impl SweepConfig {
    /// Parses a sweep document:
    ///
    /// ```json
    /// {
    ///   "name": "slack_sq",
    ///   "base": "SRT",
    ///   "benches": ["gcc", "go"],
    ///   "axes": [
    ///     {"path": "env.lvq_entries", "values": [8, 16, 32]}
    ///   ]
    /// }
    /// ```
    ///
    /// `base` is either a [`DeviceKind`] name (the kind's default spec)
    /// or a full six-section spec document. Every axis path/value pair is
    /// validated against the base spec up front, so a bad sweep file
    /// fails before any simulation runs.
    ///
    /// # Errors
    ///
    /// A message naming the offending key.
    pub fn from_json(doc: &Json) -> Result<SweepConfig, String> {
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("sweep file needs a string `name`")?
            .to_string();
        let base = match doc.get("base") {
            Some(Json::Str(kind_name)) => {
                let kind = DeviceKind::from_name(kind_name)
                    .ok_or_else(|| format!("unknown device kind `{kind_name}` in `base`"))?;
                MachineSpec::for_kind(kind)
            }
            Some(spec_doc) => MachineSpec::from_json(spec_doc).map_err(|e| e.to_string())?,
            None => return Err("sweep file needs a `base` (kind name or spec document)".into()),
        };
        let benches = match doc.get("benches").and_then(Json::as_array) {
            Some(list) => list
                .iter()
                .map(|v| {
                    let n = v.as_str().ok_or("`benches` entries must be strings")?;
                    ALL_BENCHMARKS
                        .iter()
                        .copied()
                        .find(|b| b.name() == n)
                        .ok_or_else(|| format!("unknown benchmark `{n}` in `benches`"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => return Err("sweep file needs a `benches` array".into()),
        };
        let axes = match doc.get("axes").and_then(Json::as_array) {
            Some(list) if !list.is_empty() => list
                .iter()
                .map(|a| {
                    let path = a
                        .get("path")
                        .and_then(Json::as_str)
                        .ok_or("each axis needs a string `path`")?
                        .to_string();
                    let values = a
                        .get("values")
                        .and_then(Json::as_array)
                        .ok_or("each axis needs a `values` array")?
                        .to_vec();
                    if values.is_empty() {
                        return Err(format!("axis `{path}` has no values"));
                    }
                    // Validate every cell's override against the base spec
                    // now, not in a worker thread mid-sweep.
                    for v in &values {
                        let mut probe = base.clone();
                        probe.set(&path, v.clone()).map_err(|e| e.to_string())?;
                    }
                    Ok(SweepAxis { path, values })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("sweep file needs a non-empty `axes` array".into()),
        };
        Ok(SweepConfig {
            name,
            base,
            benches,
            axes,
        })
    }
}

/// One sweep cell's outcome: which knob was set to what, the per-benchmark
/// efficiencies, and the fully resolved spec the cell ran.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The axis key path.
    pub path: String,
    /// The value this row assigned to it.
    pub value: Json,
    /// `(benchmark, SMT efficiency)` per benchmark.
    pub effs: Vec<(Benchmark, f64)>,
    /// Mean efficiency across the benchmarks.
    pub mean_eff: f64,
    /// The resolved machine spec of this row's runs.
    pub spec: MachineSpec,
}

impl SweepRow {
    /// The row's JSON form — the element schema of the `"sweep"` array in
    /// sweep result documents (the `sweep` binary and the serving layer
    /// emit the same shape):
    ///
    /// ```json
    /// {"path": "core.sq_entries", "value": 16,
    ///  "effs": {"gcc": 0.91}, "mean_eff": 0.91, "config": {...}}
    /// ```
    pub fn to_json(&self) -> Json {
        let mut effs = Json::obj();
        for (b, e) in &self.effs {
            effs.set(b.name(), Json::F64(*e));
        }
        Json::obj()
            .with("path", Json::Str(self.path.clone()))
            .with("value", self.value.clone())
            .with("effs", effs)
            .with("mean_eff", Json::F64(self.mean_eff))
            .with("config", self.spec.to_json())
    }
}

/// Runs the sweep: every `(axis, value, benchmark)` cell is one job on
/// the context's runner (bench-innermost, axis-major — a fixed order, so
/// results are bitwise identical at any `--jobs` level). Efficiency is
/// taken against the shared Base denominators, exactly like the ablation
/// figures. Returns the printable figure plus one [`SweepRow`] per
/// `(axis, value)` with its resolved spec.
///
/// # Panics
///
/// Panics if a cell's simulation fails (the config was validated at
/// parse time, so this is a simulation bug, not a user error).
pub fn sensitivity_sweep(
    ctx: &FigureCtx,
    scale: SimScale,
    cfg: &SweepConfig,
    max_cycle_factor: u64,
) -> (FigureResult, Vec<SweepRow>) {
    // Flatten (axis, value) pairs; each pair owns `benches.len()` cells.
    let cells: Vec<(usize, usize)> = cfg
        .axes
        .iter()
        .enumerate()
        .flat_map(|(a, axis)| (0..axis.values.len()).map(move |v| (a, v)))
        .collect();
    let nb = cfg.benches.len();
    let flat = ctx.runner.run(cells.len() * nb, |i| {
        let (a, v) = cells[i / nb];
        let bench = cfg.benches[i % nb];
        let axis = &cfg.axes[a];
        let mut spec = cfg.base.clone();
        spec.set(&axis.path, axis.values[v].clone())
            .expect("validated at parse time");
        let r = ctx
            .apply(
                Experiment::from_spec(spec)
                    .benchmark(bench)
                    .seed(scale.seed)
                    .warmup(scale.warmup)
                    .measure(scale.measure)
                    .max_cycle_factor(max_cycle_factor),
            )
            .run()
            .unwrap_or_else(|e| {
                panic!("sweep cell {}={} on {bench} failed: {e}", axis.path, {
                    axis.values[v].encode()
                })
            });
        ctx.runner.add_sim_cycles(r.cycles);
        r.ipc(0)
            / ctx.baselines.ipc_with(
                bench,
                scale.seed,
                scale.warmup,
                scale.measure,
                &ctx.overrides,
            )
    });

    let mut cols: Vec<String> = vec!["axis".into(), "value".into()];
    cols.extend(cfg.benches.iter().map(|b| b.name().to_string()));
    cols.push("mean".into());
    let mut t = Table::new(cols);
    let mut summary = BTreeMap::new();
    let mut rows = Vec::with_capacity(cells.len());
    for (ci, &(a, v)) in cells.iter().enumerate() {
        let axis = &cfg.axes[a];
        let value = &axis.values[v];
        let effs: Vec<f64> = flat[ci * nb..(ci + 1) * nb].to_vec();
        let m = mean(&effs);
        let mut table_cells = vec![axis.path.clone(), value.encode()];
        table_cells.extend(effs.iter().map(|&e| fmt3(e)));
        table_cells.push(fmt3(m));
        t.row(table_cells);
        summary.insert(format!("{}={}", axis.path, value.encode()), m);
        let mut spec = cfg.base.clone();
        spec.set(&axis.path, value.clone())
            .expect("validated at parse time");
        rows.push(SweepRow {
            path: axis.path.clone(),
            value: value.clone(),
            effs: cfg.benches.iter().copied().zip(effs).collect(),
            mean_eff: m,
            spec,
        });
    }
    (
        FigureResult {
            table: t,
            summary,
            metrics: BTreeMap::new(),
            timeseries: BTreeMap::new(),
        },
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_doc() -> Json {
        rmt_stats::json::parse(
            r#"{
                "name": "tiny",
                "base": "SRT",
                "benches": ["m88ksim"],
                "axes": [{"path": "core.sq_entries", "values": [16, 64]}]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn parses_and_validates_a_sweep_file() {
        let cfg = SweepConfig::from_json(&sweep_doc()).unwrap();
        assert_eq!(cfg.name, "tiny");
        assert_eq!(cfg.base.kind(), DeviceKind::Srt);
        assert_eq!(cfg.benches, vec![Benchmark::M88ksim]);
        assert_eq!(cfg.axes.len(), 1);
        assert_eq!(cfg.axes[0].values, vec![Json::U64(16), Json::U64(64)]);
    }

    #[test]
    fn rejects_bad_paths_kinds_and_benchmarks() {
        let mut doc = sweep_doc();
        doc.set("base", Json::Str("NotAKind".into()));
        assert!(SweepConfig::from_json(&doc)
            .unwrap_err()
            .contains("NotAKind"));

        let doc = rmt_stats::json::parse(
            r#"{"name": "x", "base": "SRT", "benches": ["m88ksim"],
                "axes": [{"path": "core.nope", "values": [1]}]}"#,
        )
        .unwrap();
        assert!(SweepConfig::from_json(&doc)
            .unwrap_err()
            .contains("core.nope"));

        let doc = rmt_stats::json::parse(
            r#"{"name": "x", "base": "SRT", "benches": ["quake"],
                "axes": [{"path": "core.sq_entries", "values": [16]}]}"#,
        )
        .unwrap();
        assert!(SweepConfig::from_json(&doc).unwrap_err().contains("quake"));
    }

    #[test]
    fn accepts_a_full_spec_document_as_base() {
        let mut doc = sweep_doc();
        let mut spec = MachineSpec::for_kind(DeviceKind::Srt);
        spec.set("core.sq_entries", Json::U64(32)).unwrap();
        doc.set("base", spec.to_json());
        let cfg = SweepConfig::from_json(&doc).unwrap();
        assert_eq!(cfg.base.core.sq_entries, 32);
    }

    #[test]
    fn sweep_runs_and_embeds_resolved_specs() {
        let cfg = SweepConfig::from_json(&sweep_doc()).unwrap();
        let ctx = FigureCtx::new(2);
        let (r, rows) = sensitivity_sweep(&ctx, SimScale::quick(), &cfg, 120);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].spec.core.sq_entries, 16);
        assert_eq!(rows[1].spec.core.sq_entries, 64);
        assert!(
            rows[0].mean_eff <= rows[1].mean_eff,
            "a tiny store queue must not beat the default: {} vs {}",
            rows[0].mean_eff,
            rows[1].mean_eff
        );
        assert_eq!(r.table.num_rows(), 2);
        assert!(r.summary.contains_key("core.sq_entries=16"));
        // Determinism across job counts.
        let seq = FigureCtx::sequential();
        let (r2, rows2) = sensitivity_sweep(&seq, SimScale::quick(), &cfg, 120);
        assert_eq!(r, r2);
        assert_eq!(rows, rows2);
    }
}
