//! Workload-facing figures: the redundant-thread slack profile and the
//! workload characterization table.

use super::{FigureCtx, FigureResult, SimScale};
use rmt_core::device::{Device, LogicalThread, SrtDevice, SrtOptions};
use rmt_pipeline::CoreConfig;
use rmt_stats::metrics::mean;
use rmt_stats::table::{fmt3, fmt_pct};
use rmt_stats::Table;
use rmt_workloads::{Benchmark, Workload};
use std::collections::BTreeMap;

/// Redundant-thread slack distribution under SRT: mean and maximum of
/// (leading − trailing) committed instructions, the quantity slack fetch
/// controlled explicitly in the original SRT design and that the LVQ/LPQ
/// capacity bounds implicitly here (§4.4).
pub fn slack_profile(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let points = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let w = Workload::generate(b, scale.seed);
        let mut dev = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        let target = scale.warmup + scale.measure;
        assert!(
            dev.run_until_committed(target, target * 120),
            "{b} timed out"
        );
        let pair = dev.env().pair(0);
        (
            pair.slack.mean(),
            pair.slack.percentile(95.0).unwrap_or(0),
            pair.slack.max().unwrap_or(0),
            pair.lvq.peak(),
            pair.lpq.peak(),
        )
    });
    let mut t = Table::with_columns(&[
        "benchmark",
        "mean slack",
        "p95 slack",
        "max slack",
        "lvq peak",
        "lpq peak",
    ]);
    let mut means = Vec::new();
    let mut p95s = Vec::new();
    for (b, &(slack_mean, slack_p95, slack_max, lvq_peak, lpq_peak)) in benches.iter().zip(&points)
    {
        means.push(slack_mean);
        p95s.push(slack_p95 as f64);
        t.row(vec![
            b.name().into(),
            fmt3(slack_mean),
            slack_p95.to_string(),
            slack_max.to_string(),
            lvq_peak.to_string(),
            lpq_peak.to_string(),
        ]);
    }
    let mut summary = BTreeMap::new();
    summary.insert("mean_slack".into(), mean(&means));
    summary.insert("p95_slack_mean".into(), mean(&p95s));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

/// Workload characterization: instruction mix and machine behaviour per
/// synthetic benchmark, next to the base-processor IPC (the credibility
/// table for the SPEC95 substitution in DESIGN.md §1).
pub fn workload_chars(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    struct Chars {
        ipc: f64,
        branches: f64,
        loads: f64,
        stores: f64,
        fp: f64,
        squash_rate: f64,
        working_set: u64,
    }
    let points = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let w = Workload::generate(b, scale.seed);
        // Static instruction mix over the program text.
        let insts = w.program.insts();
        let total = insts.len() as f64;
        let frac = |pred: &dyn Fn(&rmt_isa::Inst) -> bool| {
            insts.iter().filter(|i| pred(i)).count() as f64 / total * 100.0
        };
        // Dynamic behaviour on the base machine: IPC from the warm
        // measurement window (the same number every SMT-efficiency in this
        // suite divides by); squash rate over the whole run.
        let ipc = ctx
            .baselines
            .ipc(b, scale.seed, scale.warmup, scale.measure);
        let mut dev = rmt_core::device::BaseDevice::new(
            CoreConfig::base(),
            Default::default(),
            vec![LogicalThread::from(&w)],
        );
        let target = scale.warmup + scale.measure;
        assert!(
            dev.run_until_committed(target, target * 120),
            "{b} timed out"
        );
        let committed = dev.committed(0) as f64;
        Chars {
            ipc,
            branches: frac(&|i| i.op.is_cond_branch()),
            loads: frac(&|i| i.op.is_load()),
            stores: frac(&|i| i.op.is_store()),
            fp: frac(&|i| matches!(i.op.fu_class(), rmt_isa::FuClass::Fp)),
            squash_rate: dev.core().thread_stats(0).squashes as f64 / committed * 1_000.0,
            working_set: b.profile().working_set,
        }
    });

    let mut t = Table::with_columns(&[
        "benchmark",
        "IPC",
        "branch%",
        "load%",
        "store%",
        "fp%",
        "squash/1k",
        "working set",
    ]);
    let mut summary = BTreeMap::new();
    for (b, c) in benches.iter().zip(&points) {
        summary.insert(format!("{}_ipc", b.name()), c.ipc);
        t.row(vec![
            b.name().into(),
            fmt3(c.ipc),
            fmt_pct(c.branches),
            fmt_pct(c.loads),
            fmt_pct(c.stores),
            fmt_pct(c.fp),
            fmt3(c.squash_rate),
            format!("{} KB", c.working_set / 1024),
        ]);
    }
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}
