//! The aggregate JSON artifact: the cross-suite summary table.

use super::grid::grid_eff;
use super::{FigureCtx, FigureResult, SimScale};
use crate::experiment::DeviceKind;
use rmt_stats::metrics::mean;
use rmt_stats::table::fmt3;
use rmt_stats::Table;
use rmt_workloads::Benchmark;
use std::collections::BTreeMap;

/// Cross-suite summary for the aggregate JSON report: per-benchmark base
/// IPC next to the single-thread SRT and CRT efficiencies, with every
/// run's metric snapshot attached.
pub fn suite_summary(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let kinds = [DeviceKind::Srt, DeviceKind::Crt];
    let rows: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    let grid = grid_eff(ctx, scale, &rows, &kinds);

    let mut t = Table::with_columns(&["benchmark", "base IPC", "SRT eff", "CRT eff"]);
    let mut srt_col = Vec::new();
    let mut crt_col = Vec::new();
    let mut summary = BTreeMap::new();
    for (b, row) in benches.iter().zip(&grid.effs) {
        let ipc = ctx
            .baselines
            .ipc(*b, scale.seed, scale.warmup, scale.measure);
        srt_col.push(row[0]);
        crt_col.push(row[1]);
        summary.insert(format!("{}_base_ipc", b.name()), ipc);
        t.row(vec![b.name().into(), fmt3(ipc), fmt3(row[0]), fmt3(row[1])]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        fmt3(mean(&srt_col)),
        fmt3(mean(&crt_col)),
    ]);
    summary.insert("srt_mean_efficiency".into(), mean(&srt_col));
    summary.insert("crt_mean_efficiency".into(), mean(&crt_col));
    FigureResult {
        table: t,
        summary,
        metrics: grid.metrics,
        timeseries: grid.timeseries,
    }
}
