//! The declarative experiment grid.
//!
//! Every efficiency figure is the same shape: a grid of benchmark-mix
//! rows × device-variant columns, one [`Experiment`] per cell, each
//! cell's SMT efficiency taken against the shared baseline cache. A
//! [`Variant`] names the column: a [`DeviceKind`] plus an optional
//! options tweak (that is how sweeps express their parameter axis).
//!
//! [`eff_grid`] fans the cells across the runner row-major with the
//! variant index innermost — the job-index order every `--jobs`
//! invariance golden was recorded under, so it must not change.

use super::{FigureCtx, FigureResult, SimScale};
use crate::experiment::{DeviceKind, Experiment};
use rmt_core::device::SrtOptions;
use rmt_stats::metrics::{mean, smt_efficiency};
use rmt_stats::table::fmt3;
use rmt_stats::{MetricsSnapshot, Table, TimeSeries};
use rmt_workloads::mix::mix_name;
use rmt_workloads::Benchmark;
use std::collections::BTreeMap;

/// An options tweak a [`Variant`] applies on top of its kind's defaults.
pub(crate) type Tweak<'a> = Box<dyn Fn(&mut SrtOptions) + Sync + 'a>;

/// One column of an efficiency grid: which device to build and how to
/// label the cell's metric snapshot.
pub(crate) struct Variant<'a> {
    /// The device kind the cell's experiment constructs.
    pub kind: DeviceKind,
    /// Metric-snapshot key suffix (`"mix/label"`).
    pub label: String,
    /// Cycle-budget multiplier override for slow configurations.
    pub max_cycle_factor: Option<u64>,
    /// Options tweak applied on top of the kind's defaults.
    pub tweak: Option<Tweak<'a>>,
}

impl Variant<'_> {
    /// A plain column: the kind with its default options, labelled by
    /// the kind's name.
    pub fn plain(kind: DeviceKind) -> Self {
        Variant {
            kind,
            label: kind.name().to_string(),
            max_cycle_factor: None,
            tweak: None,
        }
    }
}

/// One grid cell: run `variant` on `benches` and return the SMT
/// efficiency against the shared baselines plus the run's metrics.
fn eff_cell(
    ctx: &FigureCtx,
    variant: &Variant,
    benches: &[Benchmark],
    scale: SimScale,
) -> (f64, MetricsSnapshot, TimeSeries) {
    let mut e = Experiment::new(variant.kind)
        .benchmarks(benches)
        .seed(scale.seed)
        .warmup(scale.warmup)
        .measure(scale.measure);
    if let Some(factor) = variant.max_cycle_factor {
        e = e.max_cycle_factor(factor);
    }
    if let Some(tweak) = &variant.tweak {
        e = e.tweak_srt(|o| tweak(o));
    }
    // CLI overrides land after the variant's own tweak: the CLI wins.
    e = ctx.apply(e);
    if let Some(every) = ctx.epoch {
        e = e.epoch(every);
    }
    let r = e
        .run()
        .unwrap_or_else(|e| panic!("{} on {benches:?} failed: {e}", variant.kind));
    ctx.runner.add_sim_cycles(r.cycles);
    let pairs: Vec<(f64, f64)> = benches
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            (
                r.ipc(i),
                ctx.baselines
                    .ipc_with(b, scale.seed, scale.warmup, scale.measure, &ctx.overrides),
            )
        })
        .collect();
    (smt_efficiency(&pairs), r.metrics, r.timeseries)
}

/// The gathered output of a grid fan-out: efficiencies grouped per row
/// (variant-major within a row) plus each cell's metric snapshot and —
/// when the context enables epoch sampling — its time series, both keyed
/// `"mix/label"`.
pub(crate) struct GridOut {
    /// SMT efficiencies, `effs[row][variant]`.
    pub effs: Vec<Vec<f64>>,
    /// Whole-run metric snapshot per cell.
    pub metrics: BTreeMap<String, MetricsSnapshot>,
    /// Per-epoch metric deltas per cell (empty when sampling is off).
    pub timeseries: BTreeMap<String, TimeSeries>,
}

/// Fans `rows × variants` efficiency cells across the runner — the access
/// pattern every per-benchmark figure table uses.
pub(crate) fn eff_grid(
    ctx: &FigureCtx,
    scale: SimScale,
    rows: &[Vec<Benchmark>],
    variants: &[Variant],
) -> GridOut {
    let k = variants.len();
    let flat = ctx.runner.run(rows.len() * k, |i| {
        eff_cell(ctx, &variants[i % k], &rows[i / k], scale)
    });
    let mut effs: Vec<Vec<f64>> = vec![Vec::with_capacity(k); rows.len()];
    let mut metrics = BTreeMap::new();
    let mut timeseries = BTreeMap::new();
    for (i, (eff, snap, series)) in flat.into_iter().enumerate() {
        let (r, c) = (i / k, i % k);
        effs[r].push(eff);
        let key = format!("{}/{}", mix_name(&rows[r]), variants[c].label);
        if !series.is_empty() {
            timeseries.insert(key.clone(), series);
        }
        metrics.insert(key, snap);
    }
    GridOut {
        effs,
        metrics,
        timeseries,
    }
}

/// A single efficiency point — [`eff_grid`] with one plain cell, for
/// drivers that interleave grid points with hand-rolled runs.
pub(crate) fn run_eff(
    ctx: &FigureCtx,
    kind: DeviceKind,
    benches: &[Benchmark],
    scale: SimScale,
) -> (f64, MetricsSnapshot, TimeSeries) {
    eff_cell(ctx, &Variant::plain(kind), benches, scale)
}

/// [`eff_grid`] over plain kind columns: `benches-mix rows × kinds`.
pub(crate) fn grid_eff(
    ctx: &FigureCtx,
    scale: SimScale,
    rows: &[Vec<Benchmark>],
    kinds: &[DeviceKind],
) -> GridOut {
    let variants: Vec<Variant> = kinds.iter().map(|&k| Variant::plain(k)).collect();
    eff_grid(ctx, scale, rows, &variants)
}

/// [`eff_grid`] over a parameter axis: single-benchmark rows × one
/// tweaked variant per parameter value, metric snapshots keyed
/// `"bench/label=param"`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_eff<P: Copy + Sync + std::fmt::Display>(
    ctx: &FigureCtx,
    scale: SimScale,
    benches: &[Benchmark],
    kind: DeviceKind,
    params: &[P],
    param_label: &str,
    max_cycle_factor: u64,
    tweak: impl Fn(&mut SrtOptions, P) + Sync,
) -> GridOut {
    let rows: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    let tweak = &tweak;
    let variants: Vec<Variant> = params
        .iter()
        .map(|&p| Variant {
            kind,
            label: format!("{param_label}={p}"),
            max_cycle_factor: Some(max_cycle_factor),
            tweak: Some(Box::new(move |o: &mut SrtOptions| tweak(o, p))),
        })
        .collect();
    eff_grid(ctx, scale, &rows, &variants)
}

/// Renders a sweep's per-benchmark points as a table with one column per
/// parameter value and per-column means in the summary.
pub(crate) fn sweep_table<P: Copy + std::fmt::Display>(
    benches: &[Benchmark],
    params: &[P],
    param_label: &str,
    summary_prefix: &str,
    grid: GridOut,
) -> FigureResult {
    let per_bench = &grid.effs;
    let mut cols: Vec<String> = vec!["benchmark".into()];
    cols.extend(params.iter().map(|p| format!("{param_label}={p}")));
    let mut t = Table::new(cols);
    for (b, row) in benches.iter().zip(per_bench) {
        let mut cells = vec![b.name().to_string()];
        cells.extend(row.iter().map(|&e| fmt3(e)));
        t.row(cells);
    }
    let mut summary = BTreeMap::new();
    for (i, p) in params.iter().enumerate() {
        let col: Vec<f64> = per_bench.iter().map(|row| row[i]).collect();
        summary.insert(format!("{summary_prefix}{p}"), mean(&col));
    }
    FigureResult {
        table: t,
        summary,
        metrics: grid.metrics,
        timeseries: grid.timeseries,
    }
}
