//! Figures 10–12: chip-level redundant threading against lockstepping,
//! plus the fabric extension figure — CRT's cross-coupling generalised to
//! a four-core ring.

use super::grid::grid_eff;
use super::{FigureCtx, FigureResult, SimScale};
use crate::experiment::DeviceKind;
use rmt_stats::metrics::mean;
use rmt_stats::table::{fmt3, fmt_pct};
use rmt_stats::Table;
use rmt_workloads::mix::{four_program_mixes, mix_name, two_program_mixes};
use rmt_workloads::Benchmark;
use std::collections::BTreeMap;

fn crt_vs_lockstep(
    ctx: &FigureCtx,
    scale: SimScale,
    mixes: &[Vec<Benchmark>],
    label: &str,
) -> FigureResult {
    let kinds = [DeviceKind::Lock0, DeviceKind::Lock8, DeviceKind::Crt];
    let grid = grid_eff(ctx, scale, mixes, &kinds);

    let mut t = Table::with_columns(&[label, "Lock0", "Lock8", "CRT", "CRT vs Lock8"]);
    let mut l0 = Vec::new();
    let mut l8 = Vec::new();
    let mut crt = Vec::new();
    for (mix, row) in mixes.iter().zip(&grid.effs) {
        let (e0, e8, ec) = (row[0], row[1], row[2]);
        l0.push(e0);
        l8.push(e8);
        crt.push(ec);
        let gain = (ec / e8 - 1.0) * 100.0;
        t.row(vec![
            mix_name(mix),
            fmt3(e0),
            fmt3(e8),
            fmt3(ec),
            fmt_pct(gain),
        ]);
    }
    let gain = (mean(&crt) / mean(&l8) - 1.0) * 100.0;
    let max_gain = crt
        .iter()
        .zip(&l8)
        .map(|(c, l)| (c / l - 1.0) * 100.0)
        .fold(f64::MIN, f64::max);
    t.row(vec![
        "average".into(),
        fmt3(mean(&l0)),
        fmt3(mean(&l8)),
        fmt3(mean(&crt)),
        fmt_pct(gain),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("lock0_mean".into(), mean(&l0));
    summary.insert("lock8_mean".into(), mean(&l8));
    summary.insert("crt_mean".into(), mean(&crt));
    summary.insert("crt_vs_lock8_pct".into(), gain);
    summary.insert("crt_vs_lock8_max_pct".into(), max_gain);
    FigureResult {
        table: t,
        summary,
        metrics: grid.metrics,
        timeseries: grid.timeseries,
    }
}

/// §7.2 single-thread comparison: CRT performs like lockstepping when only
/// one logical thread runs.
pub fn fig10_crt_single(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let mixes: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    crt_vs_lockstep(ctx, scale, &mixes, "benchmark")
}

/// §7.2 two-program comparison: CRT's cross-coupling beats lockstepping.
pub fn fig11_crt_two(ctx: &FigureCtx, scale: SimScale) -> FigureResult {
    let mixes: Vec<Vec<Benchmark>> = two_program_mixes().iter().map(|m| m.to_vec()).collect();
    crt_vs_lockstep(ctx, scale, &mixes, "pair")
}

/// §7.2 four-program comparison (the paper's 15 combinations; see
/// `rmt_workloads::mix` for the reconstruction).
pub fn fig12_crt_four(ctx: &FigureCtx, scale: SimScale) -> FigureResult {
    let mixes: Vec<Vec<Benchmark>> = four_program_mixes().iter().map(|m| m.to_vec()).collect();
    crt_vs_lockstep(ctx, scale, &mixes, "mix")
}

/// Fabric extension: the two-core cross-coupled CRT against the same
/// four-program mixes spread around a four-core ring (core *i* leads pair
/// *i*, core *i*+1 mod 4 trails it) — one redundant pair per core instead
/// of two, an arrangement the pre-fabric device layer could not express.
/// Pass [`four_program_mixes`] for the paper-style run, or a subset for
/// quick checks.
pub fn fig_ring4(ctx: &FigureCtx, scale: SimScale, mixes: &[Vec<Benchmark>]) -> FigureResult {
    let kinds = [DeviceKind::Crt, DeviceKind::CrtRing4];
    let grid = grid_eff(ctx, scale, mixes, &kinds);

    let mut t = Table::with_columns(&["mix", "CRT (2 cores)", "CRT ring-4", "ring vs CRT"]);
    let mut crt = Vec::new();
    let mut ring = Vec::new();
    for (mix, row) in mixes.iter().zip(&grid.effs) {
        let (ec, er) = (row[0], row[1]);
        crt.push(ec);
        ring.push(er);
        t.row(vec![
            mix_name(mix),
            fmt3(ec),
            fmt3(er),
            fmt_pct((er / ec - 1.0) * 100.0),
        ]);
    }
    let gain = (mean(&ring) / mean(&crt) - 1.0) * 100.0;
    t.row(vec![
        "average".into(),
        fmt3(mean(&crt)),
        fmt3(mean(&ring)),
        fmt_pct(gain),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("crt_mean".into(), mean(&crt));
    summary.insert("ring4_mean".into(), mean(&ring));
    summary.insert("ring4_vs_crt_pct".into(), gain);
    FigureResult {
        table: t,
        summary,
        metrics: grid.metrics,
        timeseries: grid.timeseries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring4_runs_and_relieves_the_two_core_crt() {
        let mixes: Vec<Vec<Benchmark>> = four_program_mixes()[..2]
            .iter()
            .map(|m| m.to_vec())
            .collect();
        let r = fig_ring4(&FigureCtx::new(2), SimScale::quick(), &mixes);
        let crt = r.value("crt_mean");
        let ring = r.value("ring4_mean");
        assert!(crt > 0.0 && crt < 1.0, "CRT efficiency implausible: {crt}");
        assert!(ring > 0.0, "ring efficiency implausible: {ring}");
        // Four pairs on four cores contend less than four pairs crammed
        // onto two cross-coupled cores.
        assert!(
            ring > crt,
            "ring-4 {ring} should beat the 2-core CRT {crt} on 4-program mixes"
        );
        // One snapshot per (mix, variant) cell.
        assert_eq!(r.metrics.len(), mixes.len() * 2);
    }
}
