//! Fault-injection coverage across architectures and fault models.

use super::{FigureCtx, FigureResult, SimScale};
use crate::runner::{par_base_campaign, par_lockstep_campaign, par_srt_campaign};
use rmt_core::device::SrtOptions;
use rmt_faults::{CampaignConfig, FaultKind};
use rmt_pipeline::CoreConfig;
use rmt_stats::table::fmt3;
use rmt_stats::Table;
use rmt_workloads::{Benchmark, Workload};
use std::collections::BTreeMap;

/// Fault-detection coverage across architectures and fault models,
/// including PSR's effect on permanent-fault coverage (§4.5). Each
/// campaign's injections are fanned across the runner.
pub fn fault_coverage(ctx: &FigureCtx, scale: SimScale, bench: Benchmark) -> FigureResult {
    let w = Workload::generate(bench, scale.seed);
    let cfg = CampaignConfig {
        injections: 12,
        warmup_commits: scale.warmup.min(3_000),
        window_commits: scale.measure.min(20_000),
        seed: 0xc0ffee,
    };
    let mut t = Table::with_columns(&[
        "machine",
        "fault",
        "detected",
        "masked",
        "silent",
        "coverage",
        "mean latency",
    ]);
    let mut summary = BTreeMap::new();
    let mut add = |t: &mut Table, machine: &str, r: rmt_faults::CampaignReport| {
        t.row(vec![
            machine.into(),
            r.kind.name().into(),
            r.detected.to_string(),
            r.masked.to_string(),
            r.silent.to_string(),
            fmt3(r.coverage()),
            fmt3(r.mean_latency()),
        ]);
        summary.insert(
            format!("{machine}_{}_coverage", r.kind.name()),
            r.coverage(),
        );
        summary.insert(
            format!("{machine}_{}_silent", r.kind.name()),
            r.silent as f64,
        );
    };
    // Base machine: no detection at all.
    let base_cfg = CoreConfig::base();
    for kind in [FaultKind::TransientReg, FaultKind::TransientSq] {
        add(
            &mut t,
            "base",
            par_base_campaign(&ctx.runner, &base_cfg, &w, kind, cfg),
        );
    }
    // SRT with PSR: all models.
    let mut psr_opts = SrtOptions::default();
    psr_opts.core.preferential_space_redundancy = true;
    for kind in FaultKind::ALL {
        add(
            &mut t,
            "srt",
            par_srt_campaign(&ctx.runner, &psr_opts, &w, kind, cfg),
        );
    }
    // SRT without PSR: permanent faults (the coverage PSR exists to fix).
    add(
        &mut t,
        "srt-nopsr",
        par_srt_campaign(
            &ctx.runner,
            &SrtOptions::default(),
            &w,
            FaultKind::PermanentFu,
            cfg,
        ),
    );
    // SRT with the ECC the paper mandates for the LVQ (§2.1): strikes on
    // LVQ entries are corrected before they can diverge the threads.
    let mut ecc_opts = psr_opts.clone();
    ecc_opts.env.lvq_ecc = true;
    add(
        &mut t,
        "srt-ecc",
        par_srt_campaign(&ctx.runner, &ecc_opts, &w, FaultKind::TransientLvq, cfg),
    );
    // Lockstep: permanent + register faults.
    let lock_opts = rmt_core::lockstep::LockstepOptions::lock8();
    for kind in [FaultKind::TransientReg, FaultKind::PermanentFu] {
        add(
            &mut t,
            "lockstep",
            par_lockstep_campaign(&ctx.runner, &lock_opts, &w, kind, cfg),
        );
    }
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_coverage_shape() {
        let r = fault_coverage(&FigureCtx::new(2), SimScale::quick(), Benchmark::Swim);
        // The base machine detects nothing; unmasked store corruption is
        // silent.
        assert_eq!(r.value("base_transient-sq_coverage"), 0.0);
        assert!(r.value("base_transient-sq_silent") >= 1.0);
        // SRT catches store-queue corruption.
        assert!(r.value("srt_transient-sq_coverage") > 0.6);
        // SRT never lets a register strike escape silently.
        assert_eq!(r.value("srt_transient-reg_silent"), 0.0);
    }
}
