//! Fault-injection coverage across architectures and fault models, and
//! the per-injection forensic timeline driver behind
//! `results/fault_forensics.json`.

use super::{FigureCtx, FigureResult, SimScale};
use crate::runner::{par_base_campaign, par_crt_campaign, par_lockstep_campaign, par_srt_campaign};
use rmt_core::crt::CrtDevice;
use rmt_core::device::SrtOptions;
use rmt_faults::campaign::{
    base_injection_forensic, crt_injection_forensic, lockstep_injection_forensic,
    srt_injection_forensic,
};
use rmt_faults::{CampaignConfig, FaultForensics, FaultKind};
use rmt_pipeline::CoreConfig;
use rmt_stats::table::fmt3;
use rmt_stats::Table;
use rmt_workloads::{Benchmark, Workload};
use std::collections::BTreeMap;

/// Renders a bucket-granular latency percentile, `"-"` when nothing was
/// detected.
fn fmt_latency(p: Option<u64>) -> String {
    p.map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Fault-detection coverage across architectures and fault models,
/// including PSR's effect on permanent-fault coverage (§4.5) and the
/// detection-latency tail (p50/p95 of the campaign histogram). Each
/// campaign's injections are fanned across the runner.
pub fn fault_coverage(ctx: &FigureCtx, scale: SimScale, bench: Benchmark) -> FigureResult {
    let w = Workload::generate(bench, scale.seed);
    let cfg = CampaignConfig {
        injections: 12,
        warmup_commits: scale.warmup.min(3_000),
        window_commits: scale.measure.min(20_000),
        seed: 0xc0ffee,
    };
    let mut t = Table::with_columns(&[
        "machine",
        "fault",
        "detected",
        "masked",
        "silent",
        "coverage",
        "mean latency",
        "p50",
        "p95",
    ]);
    let mut summary = BTreeMap::new();
    let mut add = |t: &mut Table, machine: &str, r: rmt_faults::CampaignReport| {
        t.row(vec![
            machine.into(),
            r.kind.name().into(),
            r.detected.to_string(),
            r.masked.to_string(),
            r.silent.to_string(),
            fmt3(r.coverage()),
            fmt3(r.mean_latency()),
            fmt_latency(r.p50_latency()),
            fmt_latency(r.p95_latency()),
        ]);
        summary.insert(
            format!("{machine}_{}_coverage", r.kind.name()),
            r.coverage(),
        );
        summary.insert(
            format!("{machine}_{}_silent", r.kind.name()),
            r.silent as f64,
        );
        if let (Some(p50), Some(p95)) = (r.p50_latency(), r.p95_latency()) {
            summary.insert(format!("{machine}_{}_p50", r.kind.name()), p50 as f64);
            summary.insert(format!("{machine}_{}_p95", r.kind.name()), p95 as f64);
        }
    };
    // Base machine: no detection at all.
    let base_cfg = CoreConfig::base();
    for kind in [FaultKind::TransientReg, FaultKind::TransientSq] {
        add(
            &mut t,
            "base",
            par_base_campaign(&ctx.runner, &base_cfg, &w, kind, cfg),
        );
    }
    // SRT with PSR: all models.
    let mut psr_opts = SrtOptions::default();
    psr_opts.core.preferential_space_redundancy = true;
    for kind in FaultKind::ALL {
        add(
            &mut t,
            "srt",
            par_srt_campaign(&ctx.runner, &psr_opts, &w, kind, cfg),
        );
    }
    // SRT without PSR: permanent faults (the coverage PSR exists to fix).
    add(
        &mut t,
        "srt-nopsr",
        par_srt_campaign(
            &ctx.runner,
            &SrtOptions::default(),
            &w,
            FaultKind::PermanentFu,
            cfg,
        ),
    );
    // SRT with the ECC the paper mandates for the LVQ (§2.1): strikes on
    // LVQ entries are corrected before they can diverge the threads.
    let mut ecc_opts = psr_opts.clone();
    ecc_opts.env.lvq_ecc = true;
    add(
        &mut t,
        "srt-ecc",
        par_srt_campaign(&ctx.runner, &ecc_opts, &w, FaultKind::TransientLvq, cfg),
    );
    // CRT: the same strikes detected across the inter-core datapath —
    // latency includes the cross-core forwarding delay.
    let crt_opts = CrtDevice::default_options();
    for kind in [FaultKind::TransientReg, FaultKind::TransientSq] {
        add(
            &mut t,
            "crt",
            par_crt_campaign(&ctx.runner, &crt_opts, &w, kind, cfg),
        );
    }
    // Lockstep: permanent + register faults.
    let lock_opts = rmt_core::lockstep::LockstepOptions::lock8();
    for kind in [FaultKind::TransientReg, FaultKind::PermanentFu] {
        add(
            &mut t,
            "lockstep",
            par_lockstep_campaign(&ctx.runner, &lock_opts, &w, kind, cfg),
        );
    }
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

/// The forensic campaigns: one representative fault model per
/// arrangement, every injection producing a full [`FaultForensics`]
/// causal record. Returns the records (in arrangement-then-index order,
/// deterministic at any `--jobs` level) alongside a figure summarizing
/// them — the driver behind `results/fault_forensics.json`.
pub fn fault_forensics(
    ctx: &FigureCtx,
    scale: SimScale,
    bench: Benchmark,
) -> (FigureResult, Vec<FaultForensics>) {
    let w = Workload::generate(bench, scale.seed);
    let cfg = CampaignConfig {
        injections: 6,
        warmup_commits: scale.warmup.min(3_000),
        window_commits: scale.measure.min(15_000),
        seed: 0xdecaf,
    };
    let mut psr_opts = SrtOptions::default();
    psr_opts.core.preferential_space_redundancy = true;
    let crt_opts = CrtDevice::default_options();
    let lock_opts = rmt_core::lockstep::LockstepOptions::lock8();
    let base_cfg = CoreConfig::base();
    let n = cfg.injections;
    // Arrangement-major fan-out: the store-queue strike is the fault the
    // sphere-of-replication story is about, so SRT/CRT/base all take it;
    // lockstep takes the permanent FU fault its checker exists to catch.
    let records = ctx.runner.run(4 * n, |i| match (i / n, i % n) {
        (0, j) => srt_injection_forensic(&psr_opts, &w, FaultKind::TransientSq, cfg, j),
        (1, j) => crt_injection_forensic(&crt_opts, &w, FaultKind::TransientSq, cfg, j),
        (2, j) => lockstep_injection_forensic(&lock_opts, &w, FaultKind::PermanentFu, cfg, j),
        (3, j) => base_injection_forensic(&base_cfg, &w, FaultKind::TransientSq, cfg, j),
        _ => unreachable!("i < 4 * n"),
    });

    let mut t = Table::with_columns(&[
        "arrangement",
        "fault",
        "#",
        "outcome",
        "mechanism",
        "latency",
        "hops",
        "events",
    ]);
    let mut summary: BTreeMap<String, f64> = BTreeMap::new();
    for f in &records {
        t.row(vec![
            f.arrangement.into(),
            f.kind.name().into(),
            f.index.to_string(),
            f.outcome_name().into(),
            f.mechanism.unwrap_or("-").into(),
            fmt_latency(f.latency()),
            f.hops.to_string(),
            f.events.len().to_string(),
        ]);
        *summary
            .entry(format!("{}_{}", f.arrangement, f.outcome_name()))
            .or_default() += 1.0;
    }
    summary.insert("injections_per_arrangement".into(), n as f64);
    (
        FigureResult {
            table: t,
            summary,
            metrics: BTreeMap::new(),
            timeseries: BTreeMap::new(),
        },
        records,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_coverage_shape() {
        let r = fault_coverage(&FigureCtx::new(2), SimScale::quick(), Benchmark::Swim);
        // The base machine detects nothing; unmasked store corruption is
        // silent.
        assert_eq!(r.value("base_transient-sq_coverage"), 0.0);
        assert!(r.value("base_transient-sq_silent") >= 1.0);
        // SRT catches store-queue corruption.
        assert!(r.value("srt_transient-sq_coverage") > 0.6);
        // SRT never lets a register strike escape silently.
        assert_eq!(r.value("srt_transient-reg_silent"), 0.0);
        // CRT catches the same strikes across the inter-core path, and
        // its detections carry latency percentiles.
        assert!(r.value("crt_transient-sq_coverage") > 0.6);
        assert!(r.value("crt_transient-sq_p95") >= r.value("crt_transient-sq_p50"));
        // Detection-latency tails never invert anywhere they exist.
        for (k, &p50) in r.summary.iter().filter(|(k, _)| k.ends_with("_p50")) {
            let p95 = r.summary[&k.replace("_p50", "_p95")];
            assert!(p95 >= p50, "{k}: p95 {p95} < p50 {p50}");
        }
    }

    #[test]
    fn forensics_cover_every_arrangement() {
        let (r, records) =
            fault_forensics(&FigureCtx::new(2), SimScale::quick(), Benchmark::Compress);
        assert_eq!(records.len(), 24);
        for arr in ["srt", "crt", "lockstep", "base"] {
            assert_eq!(
                records.iter().filter(|f| f.arrangement == arr).count(),
                6,
                "missing records for {arr}"
            );
        }
        // The redundant arrangements catch store corruption; the base
        // machine never detects anything.
        assert!(r.summary.contains_key("srt_detected"));
        assert!(!r.summary.contains_key("base_detected"));
        // Every detected record names its mechanism and a causal chain
        // ending in a terminal stamp.
        for f in records.iter().filter(|f| f.outcome.is_detected()) {
            assert!(f.mechanism.is_some(), "{f:?}");
            assert!(!f.events.is_empty(), "{f:?}");
        }
        assert_eq!(r.table.num_rows(), 24);
    }
}
