//! One driver per reproduced table/figure.
//!
//! Every function returns a [`FigureResult`]: a printable table whose rows
//! mirror the paper's artifact, plus a machine-readable summary used by
//! tests and EXPERIMENTS.md. The `rmt-bench` binaries are thin wrappers
//! that print these.
//!
//! Each driver takes a [`FigureCtx`] and submits its independent data
//! points — `(device kind, benchmark/mix, scale)` experiments, or
//! per-injection fault-campaign jobs — to the context's [`Runner`].
//! Results are gathered by job index and baselines are memoized once per
//! key, so a figure is **bitwise identical** at any `--jobs` level (the
//! determinism tests assert this).
//!
//! The module is organised by topic, with every driver re-exported flat
//! so callers keep writing `figures::fig6_srt_single`:
//!
//! * `grid` — the declarative experiment grid all efficiency figures fan
//!   out through: benchmark-mix rows × device `Variant` columns (a
//!   `DeviceKind` plus an optional options tweak), one job per cell.
//! * `machine` — Table 1 and Figure 2, read back from the live config.
//! * `sampling` — the sampled Figure 6 grid (SMARTS-style windows with
//!   paired Base denominators) and the sampled-vs-full error validation.
//! * `srt` — Figures 6–9: one-thread SRT, PSR, multi-thread SRT, stores.
//! * `crt` — Figures 10–12 (lockstep vs CRT) and the four-core CRT ring.
//! * `ablations` — sizing and policy sweeps.
//! * `workloads` — slack profiles and workload characterization.
//! * `faults` — fault-injection coverage.
//! * `suite` — the aggregate JSON artifact.
//!
//! The paper's runs are 15M instructions per program on a hardware-grade
//! simulator; ours default to smaller intervals (see [`SimScale`]) — the
//! *shape* of each result is the reproduction target, not absolute
//! magnitudes (DESIGN.md §5).

mod ablations;
mod crt;
mod faults;
mod grid;
mod machine;
mod sampling;
mod sensitivity;
mod srt;
mod suite;
mod workloads;

pub use ablations::{
    abl_crt_delay, abl_fetch_policy, abl_lvq_size, abl_prefetch, abl_slack, abl_sq_size,
};
pub use crt::{fig10_crt_single, fig11_crt_two, fig12_crt_four, fig_ring4};
pub use faults::{fault_coverage, fault_forensics};
pub use machine::{fig2_pipeline, table1};
pub use sampling::{
    fig6_full_grid, fig6_sampled_grid, fig6_srt_single_sampled, sampling_validation, SampledGrid,
};
pub use sensitivity::{sensitivity_sweep, SweepAxis, SweepConfig, SweepRow};
pub use srt::{fig6_srt_single, fig7_psr, fig8_srt_multi, fig9_storeq};
pub use suite::suite_summary;
pub use workloads::{slack_profile, workload_chars};

use crate::baseline::BaselineCache;
use crate::experiment::Experiment;
use crate::runner::Runner;
use rmt_stats::{Json, MetricsSnapshot, Table, TimeSeries};
use std::collections::BTreeMap;

/// How much simulation to spend per data point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimScale {
    /// Instructions committed per logical thread before measurement.
    pub warmup: u64,
    /// Instructions committed per logical thread in the measured interval.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
}

impl SimScale {
    /// Small runs for CI (~seconds per figure). Caches and predictors are
    /// still partially cold at this scale; use it for shape checks, not
    /// recorded numbers.
    pub fn quick() -> Self {
        SimScale {
            warmup: 2_000,
            measure: 10_000,
            seed: 1,
        }
    }

    /// The default scale used by the figure binaries: long enough for the
    /// pointer-chase rings, predictors and caches to reach steady state.
    pub fn standard() -> Self {
        SimScale {
            warmup: 40_000,
            measure: 80_000,
            seed: 1,
        }
    }

    /// Long runs for the recorded EXPERIMENTS.md numbers.
    pub fn full() -> Self {
        SimScale {
            warmup: 60_000,
            measure: 150_000,
            seed: 1,
        }
    }
}

/// Shared execution context for a figure suite: the parallel [`Runner`]
/// and the [`BaselineCache`] whose base-IPC denominators are computed
/// exactly once per `(bench, seed, warmup, measure)` across every figure
/// run through it.
#[derive(Debug, Default)]
pub struct FigureCtx {
    /// The job pool figures fan their data points across.
    pub runner: Runner,
    /// Memoized single-thread base IPCs shared by all drivers and workers.
    pub baselines: BaselineCache,
    /// When set, every grid experiment samples its metric registry into
    /// per-epoch deltas at this cycle interval (the `--epoch` flag), and
    /// the figure's [`FigureResult::timeseries`] carries them.
    pub epoch: Option<u64>,
    /// Machine-spec key-path overrides (the `--set`/`--config` flags),
    /// replayed onto **every** experiment a figure driver submits —
    /// including the Base denominators — after the driver's own variant
    /// tweaks, so the CLI always has the last word. The `scheme.kind`
    /// path is skipped: the figure's columns own the device kind.
    pub overrides: Vec<(String, Json)>,
}

impl FigureCtx {
    /// A context with `jobs` worker threads.
    pub fn new(jobs: usize) -> Self {
        FigureCtx {
            runner: Runner::new(jobs),
            baselines: BaselineCache::new(),
            epoch: None,
            overrides: Vec::new(),
        }
    }

    /// A context sized to the host's available parallelism.
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// A single-worker context (the sequential reference).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Enables per-epoch time-series sampling on every grid experiment.
    pub fn with_epoch(mut self, every: u64) -> Self {
        self.epoch = Some(every);
        self
    }

    /// Installs machine-spec overrides to replay onto every experiment.
    pub fn with_overrides(mut self, overrides: Vec<(String, Json)>) -> Self {
        self.overrides = overrides;
        self
    }

    /// Replays this context's overrides onto one experiment (after any
    /// driver tweaks — the CLI has the last word). Every site that builds
    /// an [`Experiment`] for a figure funnels through here.
    pub fn apply(&self, mut e: Experiment) -> Experiment {
        for (path, v) in &self.overrides {
            if path == "scheme.kind" {
                continue;
            }
            e = e.set(path, v.clone());
        }
        e
    }
}

/// A printable artifact plus machine-readable summary values.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// The paper-style rows.
    pub table: Table,
    /// Named scalar results (averages, deltas) for tests and reports.
    pub summary: BTreeMap<String, f64>,
    /// Whole-run metric snapshots for the figure's experiments, keyed
    /// `"mix/variant"` (empty for drivers that do not run full
    /// [`Experiment`](crate::experiment::Experiment)s). Deterministic:
    /// part of the `--jobs` invariance the determinism tests assert.
    pub metrics: BTreeMap<String, MetricsSnapshot>,
    /// Per-epoch metric time series, keyed like [`FigureResult::metrics`].
    /// Empty unless the context enables [`FigureCtx::epoch`] (cycle-aligned
    /// sampling, so `--jobs`-invariant like everything else here).
    pub timeseries: BTreeMap<String, TimeSeries>,
}

impl FigureResult {
    /// A summary value by name.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent (a test programming error).
    pub fn value(&self, key: &str) -> f64 {
        *self
            .summary
            .get(key)
            .unwrap_or_else(|| panic!("missing summary key `{key}`"))
    }
}
