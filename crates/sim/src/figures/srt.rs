//! Figures 6–9: SRT against the base processor — single-thread
//! efficiency, preferential space redundancy, two-logical-thread runs and
//! the store-lifetime analysis.

use super::grid::grid_eff;
use super::{FigureCtx, FigureResult, SimScale};
use crate::experiment::DeviceKind;
use rmt_core::device::{Device, LogicalThread, SrtDevice, SrtOptions};
use rmt_pipeline::CoreConfig;
use rmt_stats::metrics::{degradation_pct, mean};
use rmt_stats::table::{fmt3, fmt_pct};
use rmt_stats::Table;
use rmt_workloads::mix::{mix_name, two_program_mixes};
use rmt_workloads::{Benchmark, Workload};
use std::collections::BTreeMap;

/// Figure 6: SMT-efficiency for one logical thread under Base2, SRT+nosc,
/// SRT and SRT+ptsq, across the benchmark suite.
pub fn fig6_srt_single(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let kinds = [
        DeviceKind::Base2,
        DeviceKind::SrtNosc,
        DeviceKind::Srt,
        DeviceKind::SrtPtsq,
    ];
    let rows: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    let grid = grid_eff(ctx, scale, &rows, &kinds);

    let mut t = Table::with_columns(&["benchmark", "Base2", "SRT+nosc", "SRT", "SRT+ptsq"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for (b, row) in benches.iter().zip(&grid.effs) {
        let mut cells = vec![b.name().to_string()];
        for (k, &eff) in row.iter().enumerate() {
            cols[k].push(eff);
            cells.push(fmt3(eff));
        }
        t.row(cells);
    }
    let mut avg_cells = vec!["average".to_string()];
    let mut summary = BTreeMap::new();
    for (k, &kind) in kinds.iter().enumerate() {
        let m = mean(&cols[k]);
        avg_cells.push(fmt3(m));
        summary.insert(format!("{}_mean_efficiency", kind.name()), m);
        summary.insert(
            format!("{}_mean_degradation_pct", kind.name()),
            degradation_pct(1.0, m),
        );
    }
    t.row(avg_cells);
    FigureResult {
        table: t,
        summary,
        metrics: grid.metrics,
        timeseries: grid.timeseries,
    }
}

fn same_fu_fraction(psr_enabled: bool, bench: Benchmark, scale: SimScale) -> (f64, f64) {
    let mut opts = SrtOptions::default();
    opts.core.preferential_space_redundancy = psr_enabled;
    let w = Workload::generate(bench, scale.seed);
    let mut dev = SrtDevice::new(opts, vec![LogicalThread::from(&w)]);
    let ok = dev.run_until_committed(
        scale.warmup + scale.measure,
        (scale.warmup + scale.measure) * 100,
    );
    assert!(ok, "{bench}: PSR run timed out");
    let psr = &dev.env().pair(0).psr;
    (psr.same_fu_fraction(), psr.same_half_fraction())
}

/// Figure 7: fraction of corresponding instructions executing on the same
/// functional unit, without and with preferential space redundancy.
pub fn fig7_psr(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    // Two jobs per benchmark: PSR off (even indices) and on (odd).
    let points = ctx.runner.run(benches.len() * 2, |i| {
        same_fu_fraction(i % 2 == 1, benches[i / 2], scale)
    });
    let mut t = Table::with_columns(&[
        "benchmark",
        "same-FU (no PSR)",
        "same-FU (PSR)",
        "same-half (no PSR)",
        "same-half (PSR)",
    ]);
    let mut no_psr = Vec::new();
    let mut with_psr = Vec::new();
    for (b, pair) in benches.iter().zip(points.chunks(2)) {
        let (fu0, half0) = pair[0];
        let (fu1, half1) = pair[1];
        no_psr.push(fu0);
        with_psr.push(fu1);
        t.row(vec![
            b.name().into(),
            fmt_pct(fu0 * 100.0),
            fmt_pct(fu1 * 100.0),
            fmt_pct(half0 * 100.0),
            fmt_pct(half1 * 100.0),
        ]);
    }
    t.row(vec![
        "average".into(),
        fmt_pct(mean(&no_psr) * 100.0),
        fmt_pct(mean(&with_psr) * 100.0),
        String::new(),
        String::new(),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("same_fu_no_psr".into(), mean(&no_psr));
    summary.insert("same_fu_with_psr".into(), mean(&with_psr));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

/// §7.1's two-logical-thread SRT result: SMT-efficiency of SRT and
/// SRT+ptsq running two programs as two redundant pairs (four contexts).
pub fn fig8_srt_multi(ctx: &FigureCtx, scale: SimScale) -> FigureResult {
    let kinds = [DeviceKind::Base, DeviceKind::Srt, DeviceKind::SrtPtsq];
    let pairs: Vec<Vec<Benchmark>> = two_program_mixes().iter().map(|m| m.to_vec()).collect();
    let grid = grid_eff(ctx, scale, &pairs, &kinds);

    let mut t = Table::with_columns(&["pair", "Base(2 threads)", "SRT", "SRT+ptsq"]);
    let mut base_col = Vec::new();
    let mut srt_col = Vec::new();
    let mut ptsq_col = Vec::new();
    for (pair, row) in pairs.iter().zip(&grid.effs) {
        let (base, srt, ptsq) = (row[0], row[1], row[2]);
        base_col.push(base);
        srt_col.push(srt);
        ptsq_col.push(ptsq);
        t.row(vec![mix_name(pair), fmt3(base), fmt3(srt), fmt3(ptsq)]);
    }
    t.row(vec![
        "average".into(),
        fmt3(mean(&base_col)),
        fmt3(mean(&srt_col)),
        fmt3(mean(&ptsq_col)),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("base2t_mean_efficiency".into(), mean(&base_col));
    summary.insert("srt_mean_efficiency".into(), mean(&srt_col));
    summary.insert("ptsq_mean_efficiency".into(), mean(&ptsq_col));
    FigureResult {
        table: t,
        summary,
        metrics: grid.metrics,
        timeseries: grid.timeseries,
    }
}

/// §7.1's store-queue analysis: average lifetime of a store-queue entry on
/// the base processor vs the SRT leading thread.
pub fn fig9_storeq(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let lifetimes = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let w = Workload::generate(b, scale.seed);
        let target = scale.warmup + scale.measure;

        let mut base = rmt_core::device::BaseDevice::new(
            CoreConfig::base(),
            Default::default(),
            vec![LogicalThread::from(&w)],
        );
        assert!(base.run_until_committed(target, target * 100));
        let base_life = base.core().store_lifetime(0).mean();

        let mut srt = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        assert!(srt.run_until_committed(target, target * 100));
        let (lead, _) = srt.pair_tids(0);
        let life = srt.core().store_lifetime(lead);
        (
            base_life,
            life.mean(),
            life.percentile(50.0).unwrap_or(0),
            life.percentile(95.0).unwrap_or(0),
        )
    });

    let mut t = Table::with_columns(&[
        "benchmark",
        "base lifetime",
        "SRT lead lifetime",
        "delta",
        "SRT p50",
        "SRT p95",
    ]);
    let mut deltas = Vec::new();
    let mut p95s = Vec::new();
    for (b, &(base_life, srt_life, p50, p95)) in benches.iter().zip(&lifetimes) {
        let delta = srt_life - base_life;
        deltas.push(delta);
        p95s.push(p95 as f64);
        t.row(vec![
            b.name().into(),
            fmt3(base_life),
            fmt3(srt_life),
            fmt3(delta),
            p50.to_string(),
            p95.to_string(),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        fmt3(mean(&deltas)),
        String::new(),
        fmt3(mean(&p95s)),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("mean_lifetime_delta".into(), mean(&deltas));
    summary.insert("srt_lifetime_p95_mean".into(), mean(&p95s));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_BENCHES: &[Benchmark] = &[Benchmark::M88ksim, Benchmark::Ijpeg];

    #[test]
    fn fig6_shape_matches_paper_orderings() {
        let ctx = FigureCtx::new(2);
        let r = fig6_srt_single(&ctx, SimScale::quick(), QUICK_BENCHES);
        // The orderings the paper reports: redundant execution costs
        // performance; SRT's optimized trailing thread beats naive
        // two-copy redundancy (Base2); removing store comparison (nosc)
        // recovers part of the loss; per-thread store queues help.
        let srt = r.value("SRT_mean_efficiency");
        let base2 = r.value("Base2_mean_efficiency");
        let nosc = r.value("SRT+nosc_mean_efficiency");
        let ptsq = r.value("SRT+ptsq_mean_efficiency");
        assert!(srt < 1.0, "SRT must degrade: {srt}");
        assert!(base2 < 1.0, "Base2 must degrade: {base2}");
        assert!(srt > base2 * 0.99, "SRT {srt} should beat Base2 {base2}");
        assert!(nosc >= srt * 0.98, "nosc should not be slower than SRT");
        assert!(ptsq >= srt * 0.99, "ptsq should not be slower than SRT");
        assert!(srt > 0.3, "SRT implausibly slow: {srt}");
        // One baseline per benchmark, however many device kinds ran.
        assert_eq!(ctx.baselines.len(), QUICK_BENCHES.len());
    }

    #[test]
    fn fig7_psr_kills_same_fu() {
        let r = fig7_psr(&FigureCtx::new(2), SimScale::quick(), &[Benchmark::M88ksim]);
        let before = r.value("same_fu_no_psr");
        let after = r.value("same_fu_with_psr");
        assert!(before > 0.25, "no-PSR same-FU fraction too low: {before}");
        assert!(after < 0.05, "PSR same-FU fraction too high: {after}");
    }

    #[test]
    fn fig9_srt_lengthens_store_lifetime() {
        let r = fig9_storeq(&FigureCtx::new(2), SimScale::quick(), QUICK_BENCHES);
        assert!(
            r.value("mean_lifetime_delta") > 5.0,
            "SRT must lengthen store lifetimes: {}",
            r.value("mean_lifetime_delta")
        );
    }
}
