//! Sizing and policy ablations: store-queue and LVQ capacity sweeps,
//! trailing-fetch policy and priority, CRT cross-core delay, and the
//! next-line prefetch extension.

use super::grid::{run_eff, sweep_eff, sweep_table};
use super::{FigureCtx, FigureResult, SimScale};
use crate::experiment::{DeviceKind, Experiment};
use rmt_core::device::{Device, LogicalThread, SrtDevice, SrtOptions};
use rmt_pipeline::CoreConfig;
use rmt_stats::metrics::mean;
use rmt_stats::table::fmt3;
use rmt_stats::Table;
use rmt_workloads::{Benchmark, Workload};
use std::collections::BTreeMap;

/// Store-queue size sweep (the motivation for per-thread store queues,
/// §4.2): SRT efficiency as the shared store queue grows.
pub fn abl_sq_size(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let sizes = [16usize, 32, 64, 128, 256];
    let grid = sweep_eff(
        ctx,
        scale,
        benches,
        DeviceKind::Srt,
        &sizes,
        "SQ",
        120,
        |o, s| {
            o.core.sq_entries = s;
        },
    );
    sweep_table(benches, &sizes, "SQ", "eff_sq", grid)
}

/// Trailing-fetch policy ablation (§4.4): the line prediction queue vs
/// fetching the trailing thread through the shared line predictor.
pub fn abl_fetch_policy(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let points = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let lpq = run_eff(ctx, DeviceKind::Srt, &[b], scale).0;
        // Shared-line-predictor trailing fetch: trailing threads
        // misspeculate, so comparison must move to retirement.
        let w = Workload::generate(b, scale.seed);
        let mut opts = SrtOptions::default();
        opts.core.preferential_space_redundancy = true;
        opts.core.trailing_uses_lpq = false;
        opts.env.compare_at_retire = true;
        opts.env.lpq_enabled = false;
        let mut dev = SrtDevice::new(opts, vec![LogicalThread::from(&w)]);
        let target = scale.warmup + scale.measure;
        assert!(
            dev.run_until_committed(target, target * 200),
            "{b} shared-fetch run timed out"
        );
        let (lead, trail) = dev.pair_tids(0);
        let eff = {
            let ipc = dev.core().thread_stats(lead).committed as f64 / dev.cycle() as f64;
            // Compare whole-run IPC against a whole-run base IPC for the
            // same instruction count (no warmup split needed for a ratio of
            // identically-measured runs).
            let mut base = rmt_core::device::BaseDevice::new(
                CoreConfig::base(),
                Default::default(),
                vec![LogicalThread::from(&w)],
            );
            assert!(base.run_until_committed(target, target * 100));
            let base_ipc = base.committed(0) as f64 / base.cycle() as f64;
            ipc / base_ipc
        };
        let trail_squashes = dev.core().thread_stats(trail).squashes;
        (lpq, eff, trail_squashes)
    });

    let mut t = Table::with_columns(&[
        "benchmark",
        "SRT (LPQ)",
        "SRT (shared line pred)",
        "trailing squashes (shared)",
    ]);
    let mut lpq_col = Vec::new();
    let mut shared_col = Vec::new();
    for (b, &(lpq, eff, trail_squashes)) in benches.iter().zip(&points) {
        lpq_col.push(lpq);
        shared_col.push(eff);
        t.row(vec![
            b.name().into(),
            fmt3(lpq),
            fmt3(eff),
            trail_squashes.to_string(),
        ]);
    }
    let mut summary = BTreeMap::new();
    summary.insert("lpq_mean".into(), mean(&lpq_col));
    summary.insert("shared_mean".into(), mean(&shared_col));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

/// Trailing-fetch priority ablation (§4.4's "best performance was achieved
/// by giving the trailing thread priority").
pub fn abl_slack(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    // Two jobs per benchmark: trailing priority (even) and ICOUNT (odd).
    let points = ctx.runner.run(benches.len() * 2, |i| {
        let b = benches[i / 2];
        if i % 2 == 0 {
            run_eff(ctx, DeviceKind::Srt, &[b], scale).0
        } else {
            let r = ctx
                .apply(
                    Experiment::new(DeviceKind::Srt)
                        .benchmark(b)
                        .seed(scale.seed)
                        .warmup(scale.warmup)
                        .measure(scale.measure)
                        .tweak_srt(|o| o.core.trailing_fetch_priority = false)
                        .max_cycle_factor(120),
                )
                .run()
                .expect("icount run");
            r.ipc(0)
                / ctx
                    .baselines
                    .ipc_with(b, scale.seed, scale.warmup, scale.measure, &ctx.overrides)
        }
    });
    let mut t = Table::with_columns(&["benchmark", "trailing priority", "ICOUNT only"]);
    let mut pri = Vec::new();
    let mut icount = Vec::new();
    for (b, pair) in benches.iter().zip(points.chunks(2)) {
        pri.push(pair[0]);
        icount.push(pair[1]);
        t.row(vec![b.name().into(), fmt3(pair[0]), fmt3(pair[1])]);
    }
    let mut summary = BTreeMap::new();
    summary.insert("priority_mean".into(), mean(&pri));
    summary.insert("icount_mean".into(), mean(&icount));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

/// LVQ size sweep: the load value queue bounds the slack between the
/// redundant threads; too small and the leading thread stalls at
/// retirement, too large buys nothing.
pub fn abl_lvq_size(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let sizes = [8usize, 16, 32, 64, 128];
    let grid = sweep_eff(
        ctx,
        scale,
        benches,
        DeviceKind::Srt,
        &sizes,
        "LVQ",
        150,
        |o, sz| {
            o.env.lvq_entries = sz;
        },
    );
    sweep_table(benches, &sizes, "LVQ", "eff_lvq", grid)
}

/// CRT inter-core forwarding-delay sweep: the paper argues the forwarding
/// queues decouple the threads, so CRT tolerates cross-core latency (§5).
pub fn abl_crt_delay(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let delays = [0u64, 2, 4, 8, 16, 32];
    let grid = sweep_eff(
        ctx,
        scale,
        benches,
        DeviceKind::Crt,
        &delays,
        "delay",
        150,
        |o, d| {
            o.env.cross_core_delay = d;
        },
    );
    sweep_table(benches, &delays, "delay", "eff_delay", grid)
}

/// Next-line L1D prefetch ablation (extension; the paper's machine has no
/// prefetcher): base-machine IPC with and without it, per benchmark.
pub fn abl_prefetch(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    // Two jobs per benchmark: prefetch off (even) and on (odd).
    let ipcs = ctx.runner.run(benches.len() * 2, |i| {
        let pf = i % 2 == 1;
        let r = ctx
            .apply(
                Experiment::new(DeviceKind::Base)
                    .benchmark(benches[i / 2])
                    .seed(scale.seed)
                    .warmup(scale.warmup)
                    .measure(scale.measure)
                    .tweak_hierarchy(move |h| h.l1d_next_line_prefetch = pf)
                    .max_cycle_factor(150),
            )
            .run()
            .expect("prefetch run");
        ctx.runner.add_sim_cycles(r.cycles);
        r.ipc(0)
    });
    let mut t = Table::with_columns(&["benchmark", "no prefetch", "next-line prefetch", "speedup"]);
    let mut speedups = Vec::new();
    let mut summary = BTreeMap::new();
    for (b, pair) in benches.iter().zip(ipcs.chunks(2)) {
        let (off, on) = (pair[0], pair[1]);
        let speedup = on / off;
        speedups.push(speedup);
        t.row(vec![b.name().into(), fmt3(off), fmt3(on), fmt3(speedup)]);
    }
    summary.insert("mean_speedup".into(), mean(&speedups));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}
