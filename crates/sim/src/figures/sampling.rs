//! Sampled figures and the sampled-vs-full accuracy validation.
//!
//! The sampled figure reproduces Figure 6's shape from a handful of
//! detailed windows per cell instead of one long interval. Efficiency is
//! estimated *paired*: the sampled kind-IPC of every window is divided by
//! the sampled Base-IPC of the **same window positions**, so positional
//! variance (which windows happened to land on cache-miss bursts) cancels
//! out of the ratio — the key to single-digit relative error from a few
//! thousand detailed instructions per cell.
//!
//! Everything fans across the context's [`Runner`](crate::Runner) and is
//! bitwise identical at any `--jobs` level.

use super::grid::grid_eff;
use super::{FigureCtx, FigureResult, SimScale};
use crate::experiment::{DeviceKind, Experiment};
use rmt_sample::SamplePlan;
use rmt_stats::table::fmt3;
use rmt_stats::{mean_ci95, Estimate, Table};
use rmt_workloads::Benchmark;
use std::collections::BTreeMap;

/// The device kinds of Figure 6, in column order.
pub(crate) const FIG6_KINDS: [DeviceKind; 4] = [
    DeviceKind::Base2,
    DeviceKind::SrtNosc,
    DeviceKind::Srt,
    DeviceKind::SrtPtsq,
];

/// A sampled efficiency grid: paired per-window estimates per
/// `[benchmark][kind]`, plus the work accounting the validation harness
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledGrid {
    /// Paired SMT-efficiency estimate per benchmark row and kind column.
    pub effs: Vec<Vec<Estimate>>,
    /// Detailed instructions simulated across every sampled run.
    pub detailed_instructions: u64,
    /// Functional fast-forward instructions across every sampled run.
    pub fastforward_instructions: u64,
}

fn exp(ctx: &FigureCtx, kind: DeviceKind, bench: Benchmark, scale: SimScale) -> Experiment {
    ctx.apply(
        Experiment::new(kind)
            .benchmark(bench)
            .seed(scale.seed)
            .warmup(scale.warmup)
            .measure(scale.measure),
    )
}

/// Runs the sampled efficiency grid for Figure 6's kinds: one checkpoint
/// ladder per benchmark (checkpoints are kind-independent), then one
/// sampled Base run plus one sampled run per kind against the shared
/// ladder, each fanned across the runner, paired per window position.
pub fn fig6_sampled_grid(
    ctx: &FigureCtx,
    scale: SimScale,
    plan: &SamplePlan,
    benches: &[Benchmark],
) -> SampledGrid {
    let kinds = FIG6_KINDS;
    let cols = kinds.len() + 1; // column 0: the sampled Base denominator
    let ladders = ctx.runner.run(benches.len(), |b| {
        exp(ctx, DeviceKind::Base, benches[b], scale)
            .sample_checkpoints(plan)
            .unwrap_or_else(|e| panic!("checkpointing {} failed: {e}", benches[b]))
    });
    let flat = ctx.runner.run(benches.len() * cols, |i| {
        let kind = match i % cols {
            0 => DeviceKind::Base,
            c => kinds[c - 1],
        };
        let bench = benches[i / cols];
        let r = exp(ctx, kind, bench, scale)
            .run_sampled_with(plan, &ladders[i / cols])
            .unwrap_or_else(|e| panic!("sampled {kind} on {bench} failed: {e}"));
        ctx.runner.add_sim_cycles(r.cycles);
        r
    });
    let mut effs = Vec::with_capacity(benches.len());
    let mut detailed = 0u64;
    let mut ff = 0u64;
    for (b, _) in benches.iter().enumerate() {
        let base = &flat[b * cols].window_ipc[0];
        let row: Vec<Estimate> = (0..kinds.len())
            .map(|c| {
                let kind_w = &flat[b * cols + c + 1].window_ipc[0];
                // Ratio of summed window cycles (each window measures the
                // same instruction count, so cycles = measure / IPC) —
                // the same aggregation the full run performs over its one
                // long interval, unlike a mean of per-window ratios which
                // overweights fast windows. The CI still comes from the
                // per-window ratio spread.
                let kind_cycles: f64 = kind_w.iter().map(|i| 1.0 / i).sum();
                let base_cycles: f64 = base.iter().map(|i| 1.0 / i).sum();
                let ratios: Vec<f64> = kind_w.iter().zip(base).map(|(k, b)| k / b).collect();
                Estimate {
                    mean: base_cycles / kind_cycles,
                    ..mean_ci95(&ratios)
                }
            })
            .collect();
        effs.push(row);
    }
    for r in &flat {
        detailed += r.detailed_instructions;
    }
    // Fast-forward work is per-ladder: every kind column shares it.
    for l in &ladders {
        ff += l.fastforward_instructions;
    }
    SampledGrid {
        effs,
        detailed_instructions: detailed,
        fastforward_instructions: ff,
    }
}

/// Figure 6, sampled: the same benchmark × kind grid as
/// [`fig6_srt_single`](super::fig6_srt_single), estimated from `plan`'s
/// detailed windows instead of one long interval. Summary carries each
/// kind's mean efficiency (same keys as the full figure, so the two are
/// directly comparable), the mean 95% CI half-width, the plan knobs and
/// the work accounting.
pub fn fig6_srt_single_sampled(
    ctx: &FigureCtx,
    scale: SimScale,
    plan: &SamplePlan,
    benches: &[Benchmark],
) -> FigureResult {
    let grid = fig6_sampled_grid(ctx, scale, plan, benches);
    let mut t = Table::with_columns(&["benchmark", "Base2", "SRT+nosc", "SRT", "SRT+ptsq"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); FIG6_KINDS.len()];
    let mut widths: Vec<Vec<f64>> = vec![Vec::new(); FIG6_KINDS.len()];
    for (b, row) in benches.iter().zip(&grid.effs) {
        let mut cells = vec![b.name().to_string()];
        for (k, est) in row.iter().enumerate() {
            cols[k].push(est.mean);
            widths[k].push(est.half_width);
            cells.push(fmt3(est.mean));
        }
        t.row(cells);
    }
    let mut avg_cells = vec!["average".to_string()];
    let mut summary = BTreeMap::new();
    for (k, &kind) in FIG6_KINDS.iter().enumerate() {
        let m = rmt_stats::metrics::mean(&cols[k]);
        avg_cells.push(fmt3(m));
        summary.insert(format!("{}_mean_efficiency", kind.name()), m);
        summary.insert(
            format!("{}_mean_ci95_half_width", kind.name()),
            rmt_stats::metrics::mean(&widths[k]),
        );
    }
    t.row(avg_cells);
    summary.insert("plan_windows".into(), plan.windows as f64);
    summary.insert("plan_warmup".into(), plan.warmup as f64);
    summary.insert("plan_measure".into(), plan.measure as f64);
    summary.insert("plan_warm_window".into(), plan.warm_window as f64);
    summary.insert(
        "detailed_instructions".into(),
        grid.detailed_instructions as f64,
    );
    summary.insert(
        "fastforward_instructions".into(),
        grid.fastforward_instructions as f64,
    );
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

/// The full-run reference for the validation harness: raw (unformatted)
/// Figure 6 efficiencies per `[benchmark][kind]`, through the shared
/// baseline cache.
pub fn fig6_full_grid(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> Vec<Vec<f64>> {
    let rows: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    grid_eff(ctx, scale, &rows, &FIG6_KINDS).effs
}

/// The sampled-vs-full validation table: one row per benchmark × kind
/// with the full-run efficiency, the sampled estimate and its 95% CI,
/// and the relative error. Summary carries per-kind mean/max relative
/// error, the overall maximum, and the detailed-instruction speedup.
///
/// # Panics
///
/// Panics if `full` and `sampled` do not cover the same grid.
pub fn sampling_validation(
    benches: &[Benchmark],
    full: &[Vec<f64>],
    sampled: &SampledGrid,
) -> FigureResult {
    assert_eq!(full.len(), benches.len(), "full grid shape");
    assert_eq!(sampled.effs.len(), benches.len(), "sampled grid shape");
    let mut t = Table::with_columns(&[
        "benchmark",
        "variant",
        "full",
        "sampled",
        "ci95",
        "rel err %",
    ]);
    let mut summary = BTreeMap::new();
    let mut all_errs = Vec::new();
    for (k, &kind) in FIG6_KINDS.iter().enumerate() {
        let mut errs = Vec::new();
        for (b, bench) in benches.iter().enumerate() {
            let reference = full[b][k];
            let est = &sampled.effs[b][k];
            let err_pct = 100.0 * (est.mean - reference).abs() / reference;
            errs.push(err_pct);
            t.row(vec![
                bench.name().into(),
                kind.name().into(),
                fmt3(reference),
                fmt3(est.mean),
                fmt3(est.half_width),
                fmt3(err_pct),
            ]);
        }
        let mean_err = rmt_stats::metrics::mean(&errs);
        let max_err = errs.iter().cloned().fold(0.0f64, f64::max);
        summary.insert(format!("{}_mean_rel_err_pct", kind.name()), mean_err);
        summary.insert(format!("{}_max_rel_err_pct", kind.name()), max_err);
        all_errs.extend(errs);
    }
    summary.insert(
        "mean_rel_err_pct".into(),
        rmt_stats::metrics::mean(&all_errs),
    );
    summary.insert(
        "max_rel_err_pct".into(),
        all_errs.iter().cloned().fold(0.0f64, f64::max),
    );
    // Detailed work the full grid spends per benchmark: one cell per kind
    // plus the shared Base baseline, each over warmup + measure committed
    // instructions. (Wall-clock speedup is measured by the binary; this
    // ratio is its machine-independent, deterministic counterpart.)
    summary.insert(
        "sampled_detailed_instructions".into(),
        sampled.detailed_instructions as f64,
    );
    summary.insert(
        "sampled_fastforward_instructions".into(),
        sampled.fastforward_instructions as f64,
    );
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_BENCHES: &[Benchmark] = &[Benchmark::M88ksim, Benchmark::Ijpeg];

    fn quick_plan() -> SamplePlan {
        SamplePlan {
            windows: 4,
            warmup: 500,
            measure: 1_200,
            warm_window: 2_048,
            ..SamplePlan::default()
        }
    }

    #[test]
    fn sampled_fig6_matches_full_shape() {
        let ctx = FigureCtx::new(2);
        let scale = SimScale::quick();
        let r = fig6_srt_single_sampled(&ctx, scale, &quick_plan(), QUICK_BENCHES);
        let srt = r.value("SRT_mean_efficiency");
        let base2 = r.value("Base2_mean_efficiency");
        assert!(srt < 1.0 && srt > 0.3, "implausible sampled SRT: {srt}");
        assert!(base2 < 1.0, "Base2 must degrade: {base2}");
        assert!(r.value("SRT_mean_ci95_half_width") >= 0.0);
        assert_eq!(r.value("plan_windows"), 4.0);
        // Table: one row per benchmark plus the average row.
        assert_eq!(r.table.num_rows(), QUICK_BENCHES.len() + 1);
    }

    #[test]
    fn validation_reports_small_error_at_quick_scale() {
        let ctx = FigureCtx::new(2);
        let scale = SimScale::quick();
        let full = fig6_full_grid(&ctx, scale, QUICK_BENCHES);
        let sampled = fig6_sampled_grid(&ctx, scale, &quick_plan(), QUICK_BENCHES);
        let r = sampling_validation(QUICK_BENCHES, &full, &sampled);
        assert!(
            r.value("max_rel_err_pct") < 25.0,
            "sampled grid wildly off at quick scale: {}",
            r.value("max_rel_err_pct")
        );
        assert!(r.value("mean_rel_err_pct") <= r.value("max_rel_err_pct"));
        assert_eq!(
            r.table.num_rows(),
            QUICK_BENCHES.len() * FIG6_KINDS.len(),
            "one row per benchmark x kind"
        );
    }
}
