//! Table 1 and Figure 2: the machine description, read back from the
//! live configuration structures so the tables cannot drift from the
//! model.

use super::FigureResult;
use rmt_pipeline::CoreConfig;
use rmt_stats::Table;
use std::collections::BTreeMap;

/// Table 1: the base processor's parameters.
pub fn table1() -> FigureResult {
    let c = CoreConfig::base();
    let h = rmt_mem::HierarchyConfig::default();
    let mut t = Table::with_columns(&["box", "parameter", "value"]);
    let mut row = |a: &str, b: &str, v: String| t.row(vec![a.into(), b.into(), v]);
    row(
        "IBOX",
        "fetch width",
        format!("{} x {}-instruction chunks", c.fetch_chunks, c.chunk_size),
    );
    row(
        "IBOX",
        "line predictor entries",
        c.line_predictor_entries.to_string(),
    );
    row(
        "IBOX",
        "L1 I-cache",
        format!(
            "{} KB, {}-way, {} B blocks, way prediction",
            h.l1i.size_bytes / 1024,
            h.l1i.assoc,
            h.l1i.block_bytes
        ),
    );
    row(
        "IBOX",
        "memory dependence predictor",
        format!("store sets, {} entries", c.store_sets_entries),
    );
    row(
        "PBOX",
        "map width",
        format!("one {}-instruction chunk per cycle", c.chunk_size),
    );
    row(
        "QBOX",
        "instruction queue",
        format!("{} entries (two {}-entry halves)", c.iq_size, c.iq_size / 2),
    );
    row(
        "QBOX",
        "issue width",
        format!("{} per cycle", c.issue_width),
    );
    row(
        "RBOX",
        "register file",
        format!("{} physical registers", c.phys_regs),
    );
    row(
        "EBOX/FBOX",
        "functional units",
        format!(
            "{} int, {} logic, {} mem, {} fp",
            c.fu_int, c.fu_logic, c.fu_mem, c.fu_fp
        ),
    );
    row(
        "MBOX",
        "L1 D-cache",
        format!(
            "{} KB, {}-way, {} B blocks, {} load ports",
            h.l1d.size_bytes / 1024,
            h.l1d.assoc,
            h.l1d.block_bytes,
            c.max_loads_per_cycle
        ),
    );
    row("MBOX", "load queue", format!("{} entries", c.lq_entries));
    row("MBOX", "store queue", format!("{} entries", c.sq_entries));
    row(
        "system",
        "L2 cache",
        format!(
            "{} MB, {}-way, {} B blocks",
            h.l2.size_bytes / 1024 / 1024,
            h.l2.assoc,
            h.l2.block_bytes
        ),
    );
    row(
        "system",
        "L2 / memory latency",
        format!("{} / {} cycles", h.l2_latency, h.mem_latency),
    );
    let mut summary = BTreeMap::new();
    summary.insert("iq_size".into(), c.iq_size as f64);
    summary.insert("phys_regs".into(), c.phys_regs as f64);
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

/// Figure 2: the pipeline's stage latencies.
pub fn fig2_pipeline() -> FigureResult {
    let c = CoreConfig::base();
    let mut t = Table::with_columns(&["segment", "role", "cycles"]);
    for (seg, role, cyc) in [
        (
            "I",
            "IBOX: thread chooser, line prediction, I-cache, rate-matching buffer",
            c.ibox_latency,
        ),
        ("P", "PBOX: wire delay + register rename", c.pbox_latency),
        ("Q", "QBOX: instruction queue", c.qbox_latency),
        ("R", "RBOX: register read", c.rbox_latency),
        ("E", "EBOX: functional units (base latency)", 1),
        (
            "M",
            "MBOX: data cache / load queue / store queue",
            c.mbox_latency,
        ),
    ] {
        t.row(vec![seg.into(), role.into(), cyc.to_string()]);
    }
    let mut summary = BTreeMap::new();
    summary.insert(
        "frontend_depth".into(),
        (c.ibox_latency + c.pbox_latency + c.qbox_latency) as f64,
    );
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
        timeseries: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reflects_config() {
        let r = table1();
        assert_eq!(r.value("iq_size"), 128.0);
        assert_eq!(r.value("phys_regs"), 512.0);
        assert!(r.table.num_rows() >= 10);
    }

    #[test]
    fn fig2_depth() {
        let r = fig2_pipeline();
        assert_eq!(r.value("frontend_depth"), 10.0);
    }
}
