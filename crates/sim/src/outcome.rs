//! Experiment outcomes: run results, per-thread outcomes and the error
//! types of [`Experiment`](crate::experiment::Experiment) runs.

use crate::experiment::DeviceKind;
use rmt_stats::{Json, MetricsSnapshot, TimeSeries};
use rmt_workloads::Benchmark;
use std::fmt;

/// Errors from [`Experiment::run`](crate::experiment::Experiment::run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The measurement did not finish within the cycle budget.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// No benchmarks were supplied.
    NoBenchmarks,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles } => {
                write!(f, "simulation exceeded its cycle budget ({cycles})")
            }
            SimError::NoBenchmarks => write!(f, "experiment has no benchmarks"),
        }
    }
}

impl std::error::Error for SimError {}

/// Errors from
/// [`Experiment::run_verified`](crate::experiment::Experiment::run_verified):
/// either the simulation itself failed, or the device's commit stream
/// disagreed with the reference interpreter.
#[derive(Debug)]
pub enum VerifyError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// The device committed state the ISA reference model disagrees with.
    Divergence(Box<rmt_verify::Divergence>),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Sim(e) => e.fmt(f),
            VerifyError::Divergence(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A [`RunResult`] whose every commit was cross-checked by the
/// co-simulation oracle.
#[derive(Debug, Clone)]
pub struct VerifiedRun {
    /// The ordinary run result.
    pub result: RunResult,
    /// Commits the oracle cross-checked (warmup included — the oracle is
    /// attached from cycle 0).
    pub commits_checked: u64,
}

/// Per-logical-thread outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadOutcome {
    /// The benchmark this thread ran.
    pub benchmark: Benchmark,
    /// Instructions committed in the measured interval.
    pub committed: u64,
    /// Cycles in the measured interval (shared across threads).
    pub cycles: u64,
}

impl ThreadOutcome {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The result of one experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Machine kind.
    pub kind: DeviceKind,
    /// Cycles in the measured interval.
    pub cycles: u64,
    /// Per-logical-thread outcomes.
    pub per_thread: Vec<ThreadOutcome>,
    /// Faults detected during measurement (0 in fault-free runs).
    pub faults_detected: usize,
    /// Whole-run metric snapshot exported by the device at the end of the
    /// run (cycle accounting, occupancy, RMT queue statistics).
    pub metrics: MetricsSnapshot,
    /// Per-epoch metric deltas sampled every
    /// [`Experiment::epoch`](crate::experiment::Experiment::epoch) cycles
    /// (empty unless the builder enabled sampling). Cycle-aligned, so it
    /// is bitwise identical at any `--jobs` level.
    pub timeseries: TimeSeries,
    /// The resolved [`MachineSpec`](rmt_core::spec::MachineSpec) this run
    /// was built from, as its six-section JSON document — every result
    /// carries the full machine description needed to reproduce it.
    pub config: Json,
}

impl RunResult {
    /// IPC of logical thread `i` over the measured interval.
    pub fn ipc(&self, i: usize) -> f64 {
        self.per_thread[i].ipc()
    }

    /// Total committed instructions across threads.
    pub fn total_committed(&self) -> u64 {
        self.per_thread.iter().map(|t| t.committed).sum()
    }

    /// Faults detected during the measured interval.
    pub fn faults_detected(&self) -> usize {
        self.faults_detected
    }
}
