//! Unit tests for the [`Experiment`] builder and its run paths.

use super::*;

fn quick(kind: DeviceKind, b: Benchmark) -> RunResult {
    Experiment::new(kind)
        .benchmark(b)
        .warmup(1_000)
        .measure(4_000)
        .seed(3)
        .run()
        .unwrap()
}

#[test]
fn empty_experiment_errors() {
    assert_eq!(
        Experiment::new(DeviceKind::Base).run().unwrap_err(),
        SimError::NoBenchmarks
    );
}

#[test]
fn base_and_srt_run() {
    let base = quick(DeviceKind::Base, Benchmark::M88ksim);
    let srt = quick(DeviceKind::Srt, Benchmark::M88ksim);
    assert!(base.ipc(0) > 0.0);
    assert!(srt.ipc(0) > 0.0);
    assert!(srt.cycles > base.cycles, "SRT must cost cycles");
    assert_eq!(srt.faults_detected(), 0);
    // Every run carries a metric snapshot from its device.
    assert!(base.metrics.counter("device/cycles").unwrap_or(0) > 0);
    assert!(
        srt.metrics
            .counter("rmt/pair0/comparator/matches")
            .unwrap_or(0)
            > 0
    );
}

#[test]
fn base2_measures_first_copy() {
    let r = quick(DeviceKind::Base2, Benchmark::Li);
    assert_eq!(r.per_thread.len(), 1);
    assert!(r.per_thread[0].committed >= 4_000);
}

#[test]
fn lockstep_kinds_run() {
    let l0 = quick(DeviceKind::Lock0, Benchmark::Ijpeg);
    let l8 = quick(DeviceKind::Lock8, Benchmark::Ijpeg);
    assert!(l8.cycles >= l0.cycles);
}

#[test]
fn crt_runs_multithreaded() {
    let r = Experiment::new(DeviceKind::Crt)
        .benchmarks(&[Benchmark::Gcc, Benchmark::Fpppp])
        .warmup(1_000)
        .measure(3_000)
        .run()
        .unwrap();
    assert_eq!(r.per_thread.len(), 2);
    assert!(r.ipc(0) > 0.0);
    assert!(r.ipc(1) > 0.0);
}

#[test]
fn identical_experiments_are_reproducible() {
    let a = quick(DeviceKind::Srt, Benchmark::Go);
    let b = quick(DeviceKind::Srt, Benchmark::Go);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_committed(), b.total_committed());
}

#[test]
fn epoch_sampling_rides_on_run_result() {
    let r = Experiment::new(DeviceKind::Srt)
        .benchmark(Benchmark::M88ksim)
        .warmup(1_000)
        .measure(4_000)
        .seed(3)
        .epoch(512)
        .run()
        .unwrap();
    assert_eq!(r.timeseries.every(), 512);
    assert!(
        r.timeseries.len() >= 2,
        "a multi-thousand-cycle run crosses several 512-cycle epochs"
    );
    // Each epoch is a delta: the device's cycle counter advances by
    // exactly the epoch length inside every complete epoch.
    for e in r.timeseries.epochs() {
        assert_eq!(e.counter("device/cycles"), Some(512));
    }
    // Disabled by default — and enabling it must not perturb the run.
    let plain = quick(DeviceKind::Srt, Benchmark::M88ksim);
    assert!(plain.timeseries.is_empty());
    assert_eq!(r.cycles, plain.cycles, "sampling must not perturb");
    assert_eq!(
        r.metrics.to_json().encode(),
        plain.metrics.to_json().encode()
    );
}

#[test]
fn progress_sink_observes_without_perturbing() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let last = Arc::new(AtomicU64::new(0));
    let calls = Arc::new(AtomicU64::new(0));
    let (l, c) = (Arc::clone(&last), Arc::clone(&calls));
    let watched = Experiment::new(DeviceKind::Srt)
        .benchmark(Benchmark::M88ksim)
        .warmup(1_000)
        .measure(4_000)
        .seed(3)
        .with_progress(ProgressSink::new(move |done, total| {
            assert_eq!(total, 5_000);
            assert!(done <= total);
            // Committed counts only grow.
            assert!(done >= l.swap(done, Ordering::Relaxed));
            c.fetch_add(1, Ordering::Relaxed);
        }))
        .run()
        .unwrap();
    assert!(calls.load(Ordering::Relaxed) >= 1, "sink never called");
    assert_eq!(last.load(Ordering::Relaxed), 5_000, "final report");
    // Bit-for-bit the same run as without a sink.
    let plain = quick(DeviceKind::Srt, Benchmark::M88ksim);
    assert_eq!(watched.cycles, plain.cycles);
    assert_eq!(
        watched.metrics.to_json().encode(),
        plain.metrics.to_json().encode()
    );
}

#[test]
fn tweaks_compose_in_call_order() {
    let e = Experiment::new(DeviceKind::Srt)
        .tweak_core(|c| c.sq_entries = 16)
        .tweak_core(|c| c.sq_entries *= 4)
        .tweak_hierarchy(|h| h.l1d_next_line_prefetch = true)
        .tweak_srt(|o| o.env.lvq_entries = 99);
    assert_eq!(
        e.options().core.sq_entries,
        64,
        "later tweaks must see earlier tweaks' values"
    );
    assert!(e.options().hierarchy.l1d_next_line_prefetch);
    assert_eq!(e.options().env.lvq_entries, 99);

    // Key-path overrides are a facade over the same spec, so they
    // interleave with closure tweaks in call order too: each one sees
    // (and may overwrite) everything applied before it.
    let e = Experiment::new(DeviceKind::Srt)
        .tweak_core(|c| c.sq_entries = 16)
        .set("core.sq_entries", Json::U64(8))
        .tweak_core(|c| c.sq_entries *= 4)
        .set("env.lvq_entries", Json::U64(99))
        .tweak_srt(|o| o.env.lvq_entries *= 2);
    assert_eq!(
        e.options().core.sq_entries,
        32,
        "a closure tweak must see the override applied before it"
    );
    assert_eq!(
        e.options().env.lvq_entries,
        198,
        "overrides and closures must compose in call order"
    );
}

#[test]
#[should_panic(expected = "experiment override failed")]
fn bad_override_panics_with_the_key_path() {
    let _ = Experiment::new(DeviceKind::Srt).set("core.no_such_knob", Json::U64(1));
}

#[test]
fn set_override_matches_tweak_core() {
    // The dotted key-path system is a facade over the same spec the
    // closure API edits, so steering a knob either way must produce
    // the *same run*: identical cycle count, identical metrics
    // document, identical embedded config. This is the CI equivalence
    // gate for the config-as-data refactor.
    let run = |e: Experiment| {
        let r = e
            .benchmark(Benchmark::M88ksim)
            .seed(3)
            .warmup(1_000)
            .measure(4_000)
            .run()
            .unwrap();
        (r.cycles, r.metrics.to_json().encode(), r.config.encode())
    };
    let via_set = run(Experiment::new(DeviceKind::Srt).set("core.sq_entries", Json::U64(16)));
    let via_tweak = run(Experiment::new(DeviceKind::Srt).tweak_core(|c| c.sq_entries = 16));
    assert_eq!(
        via_set, via_tweak,
        "--set and tweak_core must be bitwise equivalent"
    );
}

#[test]
fn run_results_embed_the_resolved_spec() {
    let r = Experiment::new(DeviceKind::Srt)
        .benchmark(Benchmark::M88ksim)
        .warmup(500)
        .measure(1_000)
        .tweak_core(|c| c.sq_entries = 32)
        .run()
        .unwrap();
    let spec = rmt_core::MachineSpec::from_json(&r.config).expect("config must validate");
    assert_eq!(spec.kind(), DeviceKind::Srt);
    assert_eq!(spec.core.sq_entries, 32);
}

#[test]
fn crt_ring4_runs_four_programs() {
    let r = Experiment::new(DeviceKind::CrtRing4)
        .benchmarks(&[
            Benchmark::Gcc,
            Benchmark::Go,
            Benchmark::Ijpeg,
            Benchmark::Swim,
        ])
        .warmup(1_000)
        .measure(2_000)
        .run()
        .unwrap();
    assert_eq!(r.per_thread.len(), 4);
    for i in 0..4 {
        assert!(r.ipc(i) > 0.0, "thread {i} made no progress");
    }
    assert_eq!(r.faults_detected(), 0);
    // Four cores exported their metric trees.
    assert!(r.metrics.counter("core3/cycles").is_some());
}

#[test]
fn verified_runs_cross_check_every_commit() {
    let v = Experiment::new(DeviceKind::Srt)
        .benchmark(Benchmark::M88ksim)
        .warmup(500)
        .measure(2_000)
        .seed(3)
        .run_verified()
        .expect("SRT diverged from the reference model");
    assert!(v.commits_checked >= 2_500, "{}", v.commits_checked);
    assert!(v.result.ipc(0) > 0.0);

    // Base2 doubles each thread; the oracle follows both copies.
    let v2 = Experiment::new(DeviceKind::Base2)
        .benchmark(Benchmark::Li)
        .warmup(500)
        .measure(2_000)
        .seed(3)
        .run_verified()
        .expect("Base2 diverged from the reference model");
    assert!(v2.commits_checked >= 4_000, "{}", v2.commits_checked);
}

#[test]
fn tweak_srt_changes_behaviour() {
    let small_sq = Experiment::new(DeviceKind::Srt)
        .benchmark(Benchmark::Compress)
        .warmup(1_000)
        .measure(4_000)
        .tweak_srt(|o| o.core.sq_entries = 8)
        .run()
        .unwrap();
    let big_sq = Experiment::new(DeviceKind::Srt)
        .benchmark(Benchmark::Compress)
        .warmup(1_000)
        .measure(4_000)
        .tweak_srt(|o| o.core.sq_entries = 128)
        .run()
        .unwrap();
    assert!(
        small_sq.cycles > big_sq.cycles,
        "a tiny store queue must hurt: {} vs {}",
        small_sq.cycles,
        big_sq.cycles
    );
}
