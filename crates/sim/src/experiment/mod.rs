//! The experiment builder: one device configuration, one benchmark set,
//! one measured interval.

use rmt_core::crt::CrtDevice;
use rmt_core::device::{BaseDevice, Device, LogicalThread, SrtDevice, SrtOptions};
use rmt_core::lockstep::{LockstepDevice, LockstepOptions};
use rmt_core::machine::Machine;
use rmt_core::schemes::Topology;
use rmt_core::spec::MachineSpec;
use rmt_mem::HierarchyConfig;
use rmt_pipeline::CoreConfig;
use rmt_stats::{Json, MetricsRegistry};
use rmt_workloads::{Benchmark, Workload};

pub use crate::outcome::{RunResult, SimError, ThreadOutcome, VerifiedRun, VerifyError};
pub use crate::runner::ProgressSink;
pub use rmt_core::spec::DeviceKind;

/// How often (in device cycles) a run with a progress sink samples its
/// committed-instruction counters. Observation cadence only: the sink
/// never influences the simulation.
const PROGRESS_STRIDE: u64 = 4_096;

/// Builder for one simulation run.
///
/// The machine itself is one [`MachineSpec`]: the `tweak_*` closures and
/// the [`Experiment::set`] key-path overrides are two facades over the
/// same spec, applied immediately and composing in call order. The
/// resolved spec is embedded in the [`RunResult`] as its `config`.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Experiment {
    spec: MachineSpec,
    pub(crate) benchmarks: Vec<Benchmark>,
    pub(crate) seed: u64,
    pub(crate) warmup: u64,
    pub(crate) measure: u64,
    pub(crate) max_cycle_factor: u64,
    epoch: u64,
    progress: Option<ProgressSink>,
}

impl Experiment {
    /// Starts an experiment on the given machine kind, with
    /// [`MachineSpec::for_kind`]'s historical per-kind defaults.
    pub fn new(kind: DeviceKind) -> Self {
        Experiment::from_spec(MachineSpec::for_kind(kind))
    }

    /// Starts an experiment on an explicit machine spec (config files,
    /// sweep cells).
    pub fn from_spec(spec: MachineSpec) -> Self {
        Experiment {
            spec,
            benchmarks: Vec::new(),
            seed: 1,
            warmup: 20_000,
            measure: 100_000,
            max_cycle_factor: 60,
            epoch: 0,
            progress: None,
        }
    }

    /// The machine kind this experiment builds.
    pub fn kind(&self) -> DeviceKind {
        self.spec.scheme.kind
    }

    /// The experiment's machine spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Adds one benchmark (one logical thread).
    pub fn benchmark(mut self, b: Benchmark) -> Self {
        self.benchmarks.push(b);
        self
    }

    /// Adds several benchmarks (logical threads).
    pub fn benchmarks(mut self, bs: &[Benchmark]) -> Self {
        self.benchmarks.extend_from_slice(bs);
        self
    }

    /// Workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Instructions each logical thread commits before measurement starts.
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Instructions each logical thread commits inside the measured
    /// interval.
    pub fn measure(mut self, n: u64) -> Self {
        self.measure = n;
        self
    }

    /// Applies a closure to the core configuration of whichever device this
    /// experiment builds (sweeps and ablations).
    ///
    /// Tweaks are applied immediately and in call order, so repeated calls
    /// compose: a later tweak sees (and may overwrite) an earlier one's
    /// values.
    pub fn tweak_core(mut self, f: impl FnOnce(&mut CoreConfig)) -> Self {
        f(&mut self.spec.core);
        self
    }

    /// Applies a closure to the full SRT/CRT options (store-queue sweeps,
    /// forwarding-delay sweeps, fetch-policy ablations). Composes like
    /// [`Experiment::tweak_core`] — and with [`Experiment::set`] overrides,
    /// in call order, since both edit the same spec.
    pub fn tweak_srt(mut self, f: impl FnOnce(&mut SrtOptions)) -> Self {
        let mut opts = self.srt_options();
        f(&mut opts);
        self.spec.core = opts.core;
        self.spec.hierarchy = opts.hierarchy;
        self.spec.env = opts.env;
        self
    }

    /// Applies a closure to the memory-hierarchy configuration of whichever
    /// device this experiment builds (prefetch/latency sweeps). Composes
    /// like [`Experiment::tweak_core`].
    pub fn tweak_hierarchy(mut self, f: impl FnOnce(&mut HierarchyConfig)) -> Self {
        f(&mut self.spec.hierarchy);
        self
    }

    /// Overrides one spec leaf by dotted key path
    /// (`.set("core.sq_entries", Json::U64(16))`) — the data-driven twin
    /// of [`Experiment::tweak_core`], applied immediately so it composes
    /// with closure tweaks in call order.
    ///
    /// # Panics
    ///
    /// On an unknown key path or ill-typed value. CLI layers validate
    /// overrides against the base spec before fanning them across a
    /// figure's experiments, so a failure here is a programming error.
    pub fn set(mut self, path: &str, value: Json) -> Self {
        if let Err(e) = self.spec.set(path, value) {
            panic!("experiment override failed: {e}");
        }
        self
    }

    /// The experiment's current device configuration (inspection and
    /// tweak-composition tests), assembled from the spec.
    pub fn options(&self) -> SrtOptions {
        self.srt_options()
    }

    fn srt_options(&self) -> SrtOptions {
        SrtOptions {
            core: self.spec.core.clone(),
            hierarchy: self.spec.hierarchy,
            env: self.spec.env,
        }
    }

    /// Raises the cycle-budget multiplier (slow configurations).
    pub fn max_cycle_factor(mut self, factor: u64) -> Self {
        self.max_cycle_factor = factor;
        self
    }

    /// Samples the device's full metric registry every `every` cycles into
    /// per-epoch deltas, delivered on [`RunResult::timeseries`]. `0` (the
    /// default) disables sampling and leaves the time series empty.
    pub fn epoch(mut self, every: u64) -> Self {
        self.epoch = every;
        self
    }

    /// Installs a [`ProgressSink`] to call periodically during the run
    /// with `(instructions committed, warmup + measure)` — the slowest
    /// thread's count, clamped to the target, so `done == total` exactly
    /// at completion. Pure observation: the run's result is bit-for-bit
    /// identical with or without a sink (asserted in tests), which is what
    /// lets the serving layer report live job progress without forfeiting
    /// the cacheability of the result.
    pub fn with_progress(mut self, sink: ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    fn logical_threads(&self) -> Vec<LogicalThread> {
        self.benchmarks
            .iter()
            .map(|&b| LogicalThread::from(&Workload::generate(b, self.seed)))
            .collect()
    }

    /// Builds the device this experiment is configured for — the one
    /// construction path for every [`DeviceKind`] (`run` uses it, and the
    /// refactor-guard test pins its output).
    ///
    /// # Errors
    ///
    /// [`SimError::NoBenchmarks`] if no benchmark was added.
    pub fn build_device(&self) -> Result<Box<dyn Device>, SimError> {
        if self.benchmarks.is_empty() {
            return Err(SimError::NoBenchmarks);
        }
        self.build_device_with(self.logical_threads())
    }

    /// Builds this experiment's device kind around explicit logical
    /// threads instead of freshly generated workloads — the re-entry path
    /// of sampled simulation, where each thread's memory image comes from
    /// an architectural checkpoint. `Base2` doubling is applied here, so
    /// callers pass exactly one thread per benchmark for every kind.
    ///
    /// # Errors
    ///
    /// [`SimError::NoBenchmarks`] if `threads` is empty.
    pub fn build_device_with(
        &self,
        threads: Vec<LogicalThread>,
    ) -> Result<Box<dyn Device>, SimError> {
        if threads.is_empty() {
            return Err(SimError::NoBenchmarks);
        }
        Ok(match self.kind() {
            DeviceKind::Base => Box::new(BaseDevice::new(
                self.spec.core.clone(),
                self.spec.hierarchy,
                threads,
            )),
            DeviceKind::Base2 => {
                // Each logical thread twice, no replication: committed is
                // measured on the even (first-copy) hardware threads.
                let doubled: Vec<LogicalThread> = threads
                    .iter()
                    .flat_map(|t| [t.clone(), t.clone()])
                    .collect();
                Box::new(BaseDevice::new(
                    self.spec.core.clone(),
                    self.spec.hierarchy,
                    doubled,
                ))
            }
            DeviceKind::Srt | DeviceKind::SrtPtsq | DeviceKind::SrtNosc | DeviceKind::SrtNoPsr => {
                Box::new(SrtDevice::new(self.srt_options(), threads))
            }
            DeviceKind::Lock0 | DeviceKind::Lock8 => Box::new(LockstepDevice::new(
                LockstepOptions {
                    core: self.spec.core.clone(),
                    hierarchy: self.spec.hierarchy,
                    checker_latency: self.spec.scheme.checker_latency,
                    desync_window: self.spec.scheme.desync_window,
                },
                threads,
            )),
            DeviceKind::Crt => Box::new(CrtDevice::new(self.srt_options(), threads)),
            DeviceKind::CrtRing4 => Box::new(Machine::redundant(
                self.srt_options(),
                threads,
                Topology::Ring(self.spec.scheme.ring),
            )),
        })
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// [`SimError::NoBenchmarks`] if no benchmark was added;
    /// [`SimError::Timeout`] if the run exceeds the cycle budget.
    pub fn run(self) -> Result<RunResult, SimError> {
        match self.run_inner(None) {
            Ok((result, _)) => Ok(result),
            Err(VerifyError::Sim(e)) => Err(e),
            Err(VerifyError::Divergence(_)) => unreachable!("no oracle attached"),
        }
    }

    /// Runs the experiment with the differential co-simulation oracle
    /// cross-checking every committed instruction (from cycle 0, warmup
    /// included) against the `rmt-isa` reference interpreter.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Sim`] wraps the ordinary [`SimError`]s;
    /// [`VerifyError::Divergence`] reports the first commit whose
    /// `(pc, register write, load, store)` tuple disagrees with the
    /// reference model, with a trail of the preceding commits.
    pub fn run_verified(self) -> Result<VerifiedRun, VerifyError> {
        if self.benchmarks.is_empty() {
            return Err(VerifyError::Sim(SimError::NoBenchmarks));
        }
        // Mirror `build_device_with`'s Base2 doubling: the oracle keeps
        // one lane per *hardware* logical thread, so on Base2 both
        // copies are independently cross-checked.
        let mut threads = self.logical_threads();
        if self.kind() == DeviceKind::Base2 {
            threads = threads
                .iter()
                .flat_map(|t| [t.clone(), t.clone()])
                .collect();
        }
        let mut oracle = rmt_verify::Oracle::for_threads(&threads);
        let (result, commits_checked) = self.run_inner(Some(&mut oracle))?;
        Ok(VerifiedRun {
            result,
            commits_checked,
        })
    }

    fn run_inner(
        self,
        mut oracle: Option<&mut rmt_verify::Oracle>,
    ) -> Result<(RunResult, u64), VerifyError> {
        let mut device = self.build_device().map_err(VerifyError::Sim)?;
        if self.epoch > 0 {
            device.enable_epoch_sampling(self.epoch);
        }
        if let Some(o) = oracle.as_deref_mut() {
            o.attach(device.as_mut());
        }
        let logical_idx: Vec<usize> = match self.kind() {
            DeviceKind::Base2 => (0..self.benchmarks.len()).map(|i| 2 * i).collect(),
            _ => (0..self.benchmarks.len()).collect(),
        };

        let budget = (self.warmup + self.measure) * self.max_cycle_factor + 200_000;
        // Per-thread measurement windows, as in the paper's fixed
        // instruction count per program: thread i's window opens when it
        // commits its `warmup`-th instruction and closes when it commits
        // `measure` more. This keeps fast threads' efficiency from being
        // inflated by the extra cache warmup they enjoy while slower
        // threads catch up.
        let n = logical_idx.len();
        let mut start_cycle: Vec<Option<u64>> = vec![None; n];
        let mut end_cycle: Vec<Option<u64>> = vec![None; n];
        let mut faults = 0usize;
        let target = self.warmup + self.measure;
        while end_cycle.iter().any(Option::is_none) {
            device.tick();
            if let Some(sink) = &self.progress {
                if device.cycle().is_multiple_of(PROGRESS_STRIDE) {
                    let slowest = logical_idx
                        .iter()
                        .map(|&i| device.committed(i))
                        .min()
                        .unwrap_or(0);
                    sink.report(slowest.min(target), target);
                }
            }
            if let Some(o) = oracle.as_deref_mut() {
                o.observe(device.as_mut())
                    .map_err(VerifyError::Divergence)?;
            }
            if device.cycle() > budget {
                return Err(VerifyError::Sim(SimError::Timeout {
                    cycles: device.cycle(),
                }));
            }
            for (k, &i) in logical_idx.iter().enumerate() {
                let c = device.committed(i);
                if start_cycle[k].is_none() && c >= self.warmup {
                    start_cycle[k] = Some(device.cycle());
                    // Only faults during measurement are reported.
                    faults = 0;
                }
                if start_cycle[k].is_some()
                    && end_cycle[k].is_none()
                    && c >= self.warmup + self.measure
                {
                    end_cycle[k] = Some(device.cycle());
                }
            }
            faults += device.drain_detected_faults().len();
        }
        if let Some(sink) = &self.progress {
            sink.report(target, target);
        }
        let total_cycles = end_cycle
            .iter()
            .map(|c| c.expect("all windows closed"))
            .max()
            .unwrap_or(0)
            - start_cycle
                .iter()
                .map(|c| c.expect("all windows opened"))
                .min()
                .unwrap_or(0);
        let per_thread = logical_idx
            .iter()
            .enumerate()
            .map(|(k, _)| ThreadOutcome {
                benchmark: self.benchmarks[k],
                committed: self.measure,
                cycles: end_cycle[k].expect("closed") - start_cycle[k].expect("opened"),
            })
            .collect();
        let mut reg = MetricsRegistry::new();
        device.export_metrics(&mut reg);
        let checked = oracle.map_or(0, |o| o.checked());
        Ok((
            RunResult {
                kind: self.kind(),
                cycles: total_cycles,
                per_thread,
                faults_detected: faults,
                metrics: reg.snapshot(),
                timeseries: device.take_timeseries(),
                config: self.spec.to_json(),
            },
            checked,
        ))
    }
}

#[cfg(test)]
mod tests;
