//! One driver per reproduced table/figure.
//!
//! Every function returns a [`FigureResult`]: a printable table whose rows
//! mirror the paper's artifact, plus a machine-readable summary used by
//! tests and EXPERIMENTS.md. The `rmt-bench` binaries are thin wrappers
//! that print these.
//!
//! Each driver takes a [`FigureCtx`] and submits its independent data
//! points — `(device kind, benchmark/mix, scale)` experiments, or
//! per-injection fault-campaign jobs — to the context's [`Runner`].
//! Results are gathered by job index and baselines are memoized once per
//! key, so a figure is **bitwise identical** at any `--jobs` level (the
//! determinism tests assert this).
//!
//! The paper's runs are 15M instructions per program on a hardware-grade
//! simulator; ours default to smaller intervals (see [`SimScale`]) — the
//! *shape* of each result is the reproduction target, not absolute
//! magnitudes (DESIGN.md §5).

use crate::baseline::BaselineCache;
use crate::experiment::{DeviceKind, Experiment};
use crate::runner::{par_base_campaign, par_lockstep_campaign, par_srt_campaign, Runner};
use rmt_core::device::{Device, LogicalThread, SrtDevice, SrtOptions};
use rmt_faults::{CampaignConfig, FaultKind};
use rmt_pipeline::CoreConfig;
use rmt_stats::metrics::{degradation_pct, mean, smt_efficiency};
use rmt_stats::table::{fmt3, fmt_pct};
use rmt_stats::{MetricsSnapshot, Table};
use rmt_workloads::mix::{four_program_mixes, mix_name, two_program_mixes};
use rmt_workloads::{Benchmark, Workload};
use std::collections::BTreeMap;

/// How much simulation to spend per data point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimScale {
    /// Instructions committed per logical thread before measurement.
    pub warmup: u64,
    /// Instructions committed per logical thread in the measured interval.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
}

impl SimScale {
    /// Small runs for CI (~seconds per figure). Caches and predictors are
    /// still partially cold at this scale; use it for shape checks, not
    /// recorded numbers.
    pub fn quick() -> Self {
        SimScale {
            warmup: 2_000,
            measure: 10_000,
            seed: 1,
        }
    }

    /// The default scale used by the figure binaries: long enough for the
    /// pointer-chase rings, predictors and caches to reach steady state.
    pub fn standard() -> Self {
        SimScale {
            warmup: 40_000,
            measure: 80_000,
            seed: 1,
        }
    }

    /// Long runs for the recorded EXPERIMENTS.md numbers.
    pub fn full() -> Self {
        SimScale {
            warmup: 60_000,
            measure: 150_000,
            seed: 1,
        }
    }
}

/// Shared execution context for a figure suite: the parallel [`Runner`]
/// and the [`BaselineCache`] whose base-IPC denominators are computed
/// exactly once per `(bench, seed, warmup, measure)` across every figure
/// run through it.
#[derive(Debug, Default)]
pub struct FigureCtx {
    /// The job pool figures fan their data points across.
    pub runner: Runner,
    /// Memoized single-thread base IPCs shared by all drivers and workers.
    pub baselines: BaselineCache,
}

impl FigureCtx {
    /// A context with `jobs` worker threads.
    pub fn new(jobs: usize) -> Self {
        FigureCtx {
            runner: Runner::new(jobs),
            baselines: BaselineCache::new(),
        }
    }

    /// A context sized to the host's available parallelism.
    pub fn available() -> Self {
        FigureCtx {
            runner: Runner::available(),
            baselines: BaselineCache::new(),
        }
    }

    /// A single-worker context (the sequential reference).
    pub fn sequential() -> Self {
        Self::new(1)
    }
}

/// A printable artifact plus machine-readable summary values.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// The paper-style rows.
    pub table: Table,
    /// Named scalar results (averages, deltas) for tests and reports.
    pub summary: BTreeMap<String, f64>,
    /// Whole-run metric snapshots for the figure's experiments, keyed
    /// `"mix/variant"` (empty for drivers that do not run full
    /// [`Experiment`]s). Deterministic: part of the `--jobs` invariance
    /// the determinism tests assert.
    pub metrics: BTreeMap<String, MetricsSnapshot>,
}

impl FigureResult {
    /// A summary value by name.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent (a test programming error).
    pub fn value(&self, key: &str) -> f64 {
        *self
            .summary
            .get(key)
            .unwrap_or_else(|| panic!("missing summary key `{key}`"))
    }
}

fn run_eff(
    ctx: &FigureCtx,
    kind: DeviceKind,
    benches: &[Benchmark],
    scale: SimScale,
) -> (f64, MetricsSnapshot) {
    let r = Experiment::new(kind)
        .benchmarks(benches)
        .seed(scale.seed)
        .warmup(scale.warmup)
        .measure(scale.measure)
        .run()
        .unwrap_or_else(|e| panic!("{kind} on {benches:?} failed: {e}"));
    ctx.runner.add_sim_cycles(r.cycles);
    let pairs: Vec<(f64, f64)> = benches
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            (
                r.ipc(i),
                ctx.baselines
                    .ipc(b, scale.seed, scale.warmup, scale.measure),
            )
        })
        .collect();
    (smt_efficiency(&pairs), r.metrics)
}

/// Fans `benches × variants` efficiency points across the runner and
/// returns them grouped per benchmark (variant-major within a bench) —
/// the access pattern every per-benchmark figure table uses — plus each
/// point's metric snapshot keyed `"mix/variant"`.
fn grid_eff(
    ctx: &FigureCtx,
    scale: SimScale,
    rows: &[Vec<Benchmark>],
    variants: &[DeviceKind],
) -> (Vec<Vec<f64>>, BTreeMap<String, MetricsSnapshot>) {
    let k = variants.len();
    let flat = ctx.runner.run(rows.len() * k, |i| {
        run_eff(ctx, variants[i % k], &rows[i / k], scale)
    });
    let mut effs: Vec<Vec<f64>> = vec![Vec::with_capacity(k); rows.len()];
    let mut metrics = BTreeMap::new();
    for (i, (eff, snap)) in flat.into_iter().enumerate() {
        let (r, c) = (i / k, i % k);
        effs[r].push(eff);
        metrics.insert(
            format!("{}/{}", mix_name(&rows[r]), variants[c].name()),
            snap,
        );
    }
    (effs, metrics)
}

// ====================================================================
// Table 1 and Figure 2: machine description
// ====================================================================

/// Table 1: the base processor's parameters, read back from the live
/// configuration structures so the table cannot drift from the model.
pub fn table1() -> FigureResult {
    let c = CoreConfig::base();
    let h = rmt_mem::HierarchyConfig::default();
    let mut t = Table::with_columns(&["box", "parameter", "value"]);
    let mut row = |a: &str, b: &str, v: String| t.row(vec![a.into(), b.into(), v]);
    row(
        "IBOX",
        "fetch width",
        format!("{} x {}-instruction chunks", c.fetch_chunks, c.chunk_size),
    );
    row(
        "IBOX",
        "line predictor entries",
        c.line_predictor_entries.to_string(),
    );
    row(
        "IBOX",
        "L1 I-cache",
        format!(
            "{} KB, {}-way, {} B blocks, way prediction",
            h.l1i.size_bytes / 1024,
            h.l1i.assoc,
            h.l1i.block_bytes
        ),
    );
    row(
        "IBOX",
        "memory dependence predictor",
        format!("store sets, {} entries", c.store_sets_entries),
    );
    row(
        "PBOX",
        "map width",
        format!("one {}-instruction chunk per cycle", c.chunk_size),
    );
    row(
        "QBOX",
        "instruction queue",
        format!("{} entries (two {}-entry halves)", c.iq_size, c.iq_size / 2),
    );
    row(
        "QBOX",
        "issue width",
        format!("{} per cycle", c.issue_width),
    );
    row(
        "RBOX",
        "register file",
        format!("{} physical registers", c.phys_regs),
    );
    row(
        "EBOX/FBOX",
        "functional units",
        format!(
            "{} int, {} logic, {} mem, {} fp",
            c.fu_int, c.fu_logic, c.fu_mem, c.fu_fp
        ),
    );
    row(
        "MBOX",
        "L1 D-cache",
        format!(
            "{} KB, {}-way, {} B blocks, {} load ports",
            h.l1d.size_bytes / 1024,
            h.l1d.assoc,
            h.l1d.block_bytes,
            c.max_loads_per_cycle
        ),
    );
    row("MBOX", "load queue", format!("{} entries", c.lq_entries));
    row("MBOX", "store queue", format!("{} entries", c.sq_entries));
    row(
        "system",
        "L2 cache",
        format!(
            "{} MB, {}-way, {} B blocks",
            h.l2.size_bytes / 1024 / 1024,
            h.l2.assoc,
            h.l2.block_bytes
        ),
    );
    row(
        "system",
        "L2 / memory latency",
        format!("{} / {} cycles", h.l2_latency, h.mem_latency),
    );
    let mut summary = BTreeMap::new();
    summary.insert("iq_size".into(), c.iq_size as f64);
    summary.insert("phys_regs".into(), c.phys_regs as f64);
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

/// Figure 2: the pipeline's stage latencies.
pub fn fig2_pipeline() -> FigureResult {
    let c = CoreConfig::base();
    let mut t = Table::with_columns(&["segment", "role", "cycles"]);
    for (seg, role, cyc) in [
        (
            "I",
            "IBOX: thread chooser, line prediction, I-cache, rate-matching buffer",
            c.ibox_latency,
        ),
        ("P", "PBOX: wire delay + register rename", c.pbox_latency),
        ("Q", "QBOX: instruction queue", c.qbox_latency),
        ("R", "RBOX: register read", c.rbox_latency),
        ("E", "EBOX: functional units (base latency)", 1),
        (
            "M",
            "MBOX: data cache / load queue / store queue",
            c.mbox_latency,
        ),
    ] {
        t.row(vec![seg.into(), role.into(), cyc.to_string()]);
    }
    let mut summary = BTreeMap::new();
    summary.insert(
        "frontend_depth".into(),
        (c.ibox_latency + c.pbox_latency + c.qbox_latency) as f64,
    );
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

// ====================================================================
// Figure 6: SRT with one logical thread
// ====================================================================

/// Figure 6: SMT-efficiency for one logical thread under Base2, SRT+nosc,
/// SRT and SRT+ptsq, across the benchmark suite.
pub fn fig6_srt_single(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let kinds = [
        DeviceKind::Base2,
        DeviceKind::SrtNosc,
        DeviceKind::Srt,
        DeviceKind::SrtPtsq,
    ];
    let rows: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    let (effs, metrics) = grid_eff(ctx, scale, &rows, &kinds);

    let mut t = Table::with_columns(&["benchmark", "Base2", "SRT+nosc", "SRT", "SRT+ptsq"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for (b, row) in benches.iter().zip(&effs) {
        let mut cells = vec![b.name().to_string()];
        for (k, &eff) in row.iter().enumerate() {
            cols[k].push(eff);
            cells.push(fmt3(eff));
        }
        t.row(cells);
    }
    let mut avg_cells = vec!["average".to_string()];
    let mut summary = BTreeMap::new();
    for (k, &kind) in kinds.iter().enumerate() {
        let m = mean(&cols[k]);
        avg_cells.push(fmt3(m));
        summary.insert(format!("{}_mean_efficiency", kind.name()), m);
        summary.insert(
            format!("{}_mean_degradation_pct", kind.name()),
            degradation_pct(1.0, m),
        );
    }
    t.row(avg_cells);
    FigureResult {
        table: t,
        summary,
        metrics,
    }
}

// ====================================================================
// Figure 7: preferential space redundancy
// ====================================================================

fn same_fu_fraction(psr_enabled: bool, bench: Benchmark, scale: SimScale) -> (f64, f64) {
    let mut opts = SrtOptions::default();
    opts.core.preferential_space_redundancy = psr_enabled;
    let w = Workload::generate(bench, scale.seed);
    let mut dev = SrtDevice::new(opts, vec![LogicalThread::from(&w)]);
    let ok = dev.run_until_committed(
        scale.warmup + scale.measure,
        (scale.warmup + scale.measure) * 100,
    );
    assert!(ok, "{bench}: PSR run timed out");
    let psr = &dev.env().pair(0).psr;
    (psr.same_fu_fraction(), psr.same_half_fraction())
}

/// Figure 7: fraction of corresponding instructions executing on the same
/// functional unit, without and with preferential space redundancy.
pub fn fig7_psr(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    // Two jobs per benchmark: PSR off (even indices) and on (odd).
    let points = ctx.runner.run(benches.len() * 2, |i| {
        same_fu_fraction(i % 2 == 1, benches[i / 2], scale)
    });
    let mut t = Table::with_columns(&[
        "benchmark",
        "same-FU (no PSR)",
        "same-FU (PSR)",
        "same-half (no PSR)",
        "same-half (PSR)",
    ]);
    let mut no_psr = Vec::new();
    let mut with_psr = Vec::new();
    for (b, pair) in benches.iter().zip(points.chunks(2)) {
        let (fu0, half0) = pair[0];
        let (fu1, half1) = pair[1];
        no_psr.push(fu0);
        with_psr.push(fu1);
        t.row(vec![
            b.name().into(),
            fmt_pct(fu0 * 100.0),
            fmt_pct(fu1 * 100.0),
            fmt_pct(half0 * 100.0),
            fmt_pct(half1 * 100.0),
        ]);
    }
    t.row(vec![
        "average".into(),
        fmt_pct(mean(&no_psr) * 100.0),
        fmt_pct(mean(&with_psr) * 100.0),
        String::new(),
        String::new(),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("same_fu_no_psr".into(), mean(&no_psr));
    summary.insert("same_fu_with_psr".into(), mean(&with_psr));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

// ====================================================================
// Two-logical-thread SRT (§7.1 prose)
// ====================================================================

/// §7.1's two-logical-thread SRT result: SMT-efficiency of SRT and
/// SRT+ptsq running two programs as two redundant pairs (four contexts).
pub fn fig8_srt_multi(ctx: &FigureCtx, scale: SimScale) -> FigureResult {
    let kinds = [DeviceKind::Base, DeviceKind::Srt, DeviceKind::SrtPtsq];
    let pairs: Vec<Vec<Benchmark>> = two_program_mixes().iter().map(|m| m.to_vec()).collect();
    let (effs, metrics) = grid_eff(ctx, scale, &pairs, &kinds);

    let mut t = Table::with_columns(&["pair", "Base(2 threads)", "SRT", "SRT+ptsq"]);
    let mut base_col = Vec::new();
    let mut srt_col = Vec::new();
    let mut ptsq_col = Vec::new();
    for (pair, row) in pairs.iter().zip(&effs) {
        let (base, srt, ptsq) = (row[0], row[1], row[2]);
        base_col.push(base);
        srt_col.push(srt);
        ptsq_col.push(ptsq);
        t.row(vec![mix_name(pair), fmt3(base), fmt3(srt), fmt3(ptsq)]);
    }
    t.row(vec![
        "average".into(),
        fmt3(mean(&base_col)),
        fmt3(mean(&srt_col)),
        fmt3(mean(&ptsq_col)),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("base2t_mean_efficiency".into(), mean(&base_col));
    summary.insert("srt_mean_efficiency".into(), mean(&srt_col));
    summary.insert("ptsq_mean_efficiency".into(), mean(&ptsq_col));
    FigureResult {
        table: t,
        summary,
        metrics,
    }
}

// ====================================================================
// Store lifetimes (§4.2 / §7.1 prose)
// ====================================================================

/// §7.1's store-queue analysis: average lifetime of a store-queue entry on
/// the base processor vs the SRT leading thread.
pub fn fig9_storeq(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let lifetimes = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let w = Workload::generate(b, scale.seed);
        let target = scale.warmup + scale.measure;

        let mut base = rmt_core::device::BaseDevice::new(
            CoreConfig::base(),
            Default::default(),
            vec![LogicalThread::from(&w)],
        );
        assert!(base.run_until_committed(target, target * 100));
        let base_life = base.core().store_lifetime(0).mean();

        let mut srt = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        assert!(srt.run_until_committed(target, target * 100));
        let (lead, _) = srt.pair_tids(0);
        let life = srt.core().store_lifetime(lead);
        (
            base_life,
            life.mean(),
            life.percentile(50.0).unwrap_or(0),
            life.percentile(95.0).unwrap_or(0),
        )
    });

    let mut t = Table::with_columns(&[
        "benchmark",
        "base lifetime",
        "SRT lead lifetime",
        "delta",
        "SRT p50",
        "SRT p95",
    ]);
    let mut deltas = Vec::new();
    let mut p95s = Vec::new();
    for (b, &(base_life, srt_life, p50, p95)) in benches.iter().zip(&lifetimes) {
        let delta = srt_life - base_life;
        deltas.push(delta);
        p95s.push(p95 as f64);
        t.row(vec![
            b.name().into(),
            fmt3(base_life),
            fmt3(srt_life),
            fmt3(delta),
            p50.to_string(),
            p95.to_string(),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        fmt3(mean(&deltas)),
        String::new(),
        fmt3(mean(&p95s)),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("mean_lifetime_delta".into(), mean(&deltas));
    summary.insert("srt_lifetime_p95_mean".into(), mean(&p95s));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

// ====================================================================
// Figures 10-12: lockstepping vs CRT
// ====================================================================

fn crt_vs_lockstep(
    ctx: &FigureCtx,
    scale: SimScale,
    mixes: &[Vec<Benchmark>],
    label: &str,
) -> FigureResult {
    let kinds = [DeviceKind::Lock0, DeviceKind::Lock8, DeviceKind::Crt];
    let (effs, metrics) = grid_eff(ctx, scale, mixes, &kinds);

    let mut t = Table::with_columns(&[label, "Lock0", "Lock8", "CRT", "CRT vs Lock8"]);
    let mut l0 = Vec::new();
    let mut l8 = Vec::new();
    let mut crt = Vec::new();
    for (mix, row) in mixes.iter().zip(&effs) {
        let (e0, e8, ec) = (row[0], row[1], row[2]);
        l0.push(e0);
        l8.push(e8);
        crt.push(ec);
        let gain = (ec / e8 - 1.0) * 100.0;
        t.row(vec![
            mix_name(mix),
            fmt3(e0),
            fmt3(e8),
            fmt3(ec),
            fmt_pct(gain),
        ]);
    }
    let gain = (mean(&crt) / mean(&l8) - 1.0) * 100.0;
    let max_gain = crt
        .iter()
        .zip(&l8)
        .map(|(c, l)| (c / l - 1.0) * 100.0)
        .fold(f64::MIN, f64::max);
    t.row(vec![
        "average".into(),
        fmt3(mean(&l0)),
        fmt3(mean(&l8)),
        fmt3(mean(&crt)),
        fmt_pct(gain),
    ]);
    let mut summary = BTreeMap::new();
    summary.insert("lock0_mean".into(), mean(&l0));
    summary.insert("lock8_mean".into(), mean(&l8));
    summary.insert("crt_mean".into(), mean(&crt));
    summary.insert("crt_vs_lock8_pct".into(), gain);
    summary.insert("crt_vs_lock8_max_pct".into(), max_gain);
    FigureResult {
        table: t,
        summary,
        metrics,
    }
}

/// §7.2 single-thread comparison: CRT performs like lockstepping when only
/// one logical thread runs.
pub fn fig10_crt_single(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let mixes: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    crt_vs_lockstep(ctx, scale, &mixes, "benchmark")
}

/// §7.2 two-program comparison: CRT's cross-coupling beats lockstepping.
pub fn fig11_crt_two(ctx: &FigureCtx, scale: SimScale) -> FigureResult {
    let mixes: Vec<Vec<Benchmark>> = two_program_mixes().iter().map(|m| m.to_vec()).collect();
    crt_vs_lockstep(ctx, scale, &mixes, "pair")
}

/// §7.2 four-program comparison (the paper's 15 combinations; see
/// `rmt_workloads::mix` for the reconstruction).
pub fn fig12_crt_four(ctx: &FigureCtx, scale: SimScale) -> FigureResult {
    let mixes: Vec<Vec<Benchmark>> = four_program_mixes().iter().map(|m| m.to_vec()).collect();
    crt_vs_lockstep(ctx, scale, &mixes, "mix")
}

// ====================================================================
// Ablations
// ====================================================================

/// Runs a `benches × params` sweep on the runner: one SRT/CRT experiment
/// per point with `tweak` applied, efficiency against the shared baseline.
/// Returns points grouped per benchmark (param-major within a bench) plus
/// per-point metric snapshots keyed `"bench/label=param"`.
#[allow(clippy::too_many_arguments)]
fn sweep_eff<P: Copy + Sync + std::fmt::Display>(
    ctx: &FigureCtx,
    scale: SimScale,
    benches: &[Benchmark],
    kind: DeviceKind,
    params: &[P],
    param_label: &str,
    max_cycle_factor: u64,
    tweak: impl Fn(&mut SrtOptions, P) + Sync,
) -> (Vec<Vec<f64>>, BTreeMap<String, MetricsSnapshot>) {
    let k = params.len();
    let flat = ctx.runner.run(benches.len() * k, |i| {
        let b = benches[i / k];
        let p = params[i % k];
        let r = Experiment::new(kind)
            .benchmark(b)
            .seed(scale.seed)
            .warmup(scale.warmup)
            .measure(scale.measure)
            .tweak_srt(|o| tweak(o, p))
            .max_cycle_factor(max_cycle_factor)
            .run()
            .expect("sweep run");
        ctx.runner.add_sim_cycles(r.cycles);
        let eff = r.ipc(0)
            / ctx
                .baselines
                .ipc(b, scale.seed, scale.warmup, scale.measure);
        (eff, r.metrics)
    });
    let mut effs: Vec<Vec<f64>> = vec![Vec::with_capacity(k); benches.len()];
    let mut metrics = BTreeMap::new();
    for (i, (eff, snap)) in flat.into_iter().enumerate() {
        let (b, p) = (benches[i / k], params[i % k]);
        effs[i / k].push(eff);
        metrics.insert(format!("{}/{param_label}={p}", b.name()), snap);
    }
    (effs, metrics)
}

fn sweep_table<P: Copy + std::fmt::Display>(
    benches: &[Benchmark],
    params: &[P],
    param_label: &str,
    summary_prefix: &str,
    per_bench: &[Vec<f64>],
    metrics: BTreeMap<String, MetricsSnapshot>,
) -> FigureResult {
    let mut cols: Vec<String> = vec!["benchmark".into()];
    cols.extend(params.iter().map(|p| format!("{param_label}={p}")));
    let mut t = Table::new(cols);
    for (b, row) in benches.iter().zip(per_bench) {
        let mut cells = vec![b.name().to_string()];
        cells.extend(row.iter().map(|&e| fmt3(e)));
        t.row(cells);
    }
    let mut summary = BTreeMap::new();
    for (i, p) in params.iter().enumerate() {
        let col: Vec<f64> = per_bench.iter().map(|row| row[i]).collect();
        summary.insert(format!("{summary_prefix}{p}"), mean(&col));
    }
    FigureResult {
        table: t,
        summary,
        metrics,
    }
}

/// Store-queue size sweep (the motivation for per-thread store queues,
/// §4.2): SRT efficiency as the shared store queue grows.
pub fn abl_sq_size(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let sizes = [16usize, 32, 64, 128, 256];
    let (effs, metrics) = sweep_eff(
        ctx,
        scale,
        benches,
        DeviceKind::Srt,
        &sizes,
        "SQ",
        120,
        |o, s| {
            o.core.sq_entries = s;
        },
    );
    sweep_table(benches, &sizes, "SQ", "eff_sq", &effs, metrics)
}

/// Trailing-fetch policy ablation (§4.4): the line prediction queue vs
/// fetching the trailing thread through the shared line predictor.
pub fn abl_fetch_policy(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let points = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let lpq = run_eff(ctx, DeviceKind::Srt, &[b], scale).0;
        // Shared-line-predictor trailing fetch: trailing threads
        // misspeculate, so comparison must move to retirement.
        let w = Workload::generate(b, scale.seed);
        let mut opts = SrtOptions::default();
        opts.core.preferential_space_redundancy = true;
        opts.core.trailing_uses_lpq = false;
        opts.env.compare_at_retire = true;
        opts.env.lpq_enabled = false;
        let mut dev = SrtDevice::new(opts, vec![LogicalThread::from(&w)]);
        let target = scale.warmup + scale.measure;
        assert!(
            dev.run_until_committed(target, target * 200),
            "{b} shared-fetch run timed out"
        );
        let (lead, trail) = dev.pair_tids(0);
        let eff = {
            let ipc = dev.core().thread_stats(lead).committed as f64 / dev.cycle() as f64;
            // Compare whole-run IPC against a whole-run base IPC for the
            // same instruction count (no warmup split needed for a ratio of
            // identically-measured runs).
            let mut base = rmt_core::device::BaseDevice::new(
                CoreConfig::base(),
                Default::default(),
                vec![LogicalThread::from(&w)],
            );
            assert!(base.run_until_committed(target, target * 100));
            let base_ipc = base.committed(0) as f64 / base.cycle() as f64;
            ipc / base_ipc
        };
        let trail_squashes = dev.core().thread_stats(trail).squashes;
        (lpq, eff, trail_squashes)
    });

    let mut t = Table::with_columns(&[
        "benchmark",
        "SRT (LPQ)",
        "SRT (shared line pred)",
        "trailing squashes (shared)",
    ]);
    let mut lpq_col = Vec::new();
    let mut shared_col = Vec::new();
    for (b, &(lpq, eff, trail_squashes)) in benches.iter().zip(&points) {
        lpq_col.push(lpq);
        shared_col.push(eff);
        t.row(vec![
            b.name().into(),
            fmt3(lpq),
            fmt3(eff),
            trail_squashes.to_string(),
        ]);
    }
    let mut summary = BTreeMap::new();
    summary.insert("lpq_mean".into(), mean(&lpq_col));
    summary.insert("shared_mean".into(), mean(&shared_col));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

/// Trailing-fetch priority ablation (§4.4's "best performance was achieved
/// by giving the trailing thread priority").
pub fn abl_slack(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    // Two jobs per benchmark: trailing priority (even) and ICOUNT (odd).
    let points = ctx.runner.run(benches.len() * 2, |i| {
        let b = benches[i / 2];
        if i % 2 == 0 {
            run_eff(ctx, DeviceKind::Srt, &[b], scale).0
        } else {
            let r = Experiment::new(DeviceKind::Srt)
                .benchmark(b)
                .seed(scale.seed)
                .warmup(scale.warmup)
                .measure(scale.measure)
                .tweak_srt(|o| o.core.trailing_fetch_priority = false)
                .max_cycle_factor(120)
                .run()
                .expect("icount run");
            r.ipc(0)
                / ctx
                    .baselines
                    .ipc(b, scale.seed, scale.warmup, scale.measure)
        }
    });
    let mut t = Table::with_columns(&["benchmark", "trailing priority", "ICOUNT only"]);
    let mut pri = Vec::new();
    let mut icount = Vec::new();
    for (b, pair) in benches.iter().zip(points.chunks(2)) {
        pri.push(pair[0]);
        icount.push(pair[1]);
        t.row(vec![b.name().into(), fmt3(pair[0]), fmt3(pair[1])]);
    }
    let mut summary = BTreeMap::new();
    summary.insert("priority_mean".into(), mean(&pri));
    summary.insert("icount_mean".into(), mean(&icount));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

/// LVQ size sweep: the load value queue bounds the slack between the
/// redundant threads; too small and the leading thread stalls at
/// retirement, too large buys nothing.
pub fn abl_lvq_size(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let sizes = [8usize, 16, 32, 64, 128];
    let (effs, metrics) = sweep_eff(
        ctx,
        scale,
        benches,
        DeviceKind::Srt,
        &sizes,
        "LVQ",
        150,
        |o, sz| {
            o.env.lvq_entries = sz;
        },
    );
    sweep_table(benches, &sizes, "LVQ", "eff_lvq", &effs, metrics)
}

/// CRT inter-core forwarding-delay sweep: the paper argues the forwarding
/// queues decouple the threads, so CRT tolerates cross-core latency (§5).
pub fn abl_crt_delay(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let delays = [0u64, 2, 4, 8, 16, 32];
    let (effs, metrics) = sweep_eff(
        ctx,
        scale,
        benches,
        DeviceKind::Crt,
        &delays,
        "delay",
        150,
        |o, d| {
            o.env.cross_core_delay = d;
        },
    );
    sweep_table(benches, &delays, "delay", "eff_delay", &effs, metrics)
}

/// Redundant-thread slack distribution under SRT: mean and maximum of
/// (leading − trailing) committed instructions, the quantity slack fetch
/// controlled explicitly in the original SRT design and that the LVQ/LPQ
/// capacity bounds implicitly here (§4.4).
pub fn slack_profile(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let points = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let w = Workload::generate(b, scale.seed);
        let mut dev = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        let target = scale.warmup + scale.measure;
        assert!(
            dev.run_until_committed(target, target * 120),
            "{b} timed out"
        );
        let pair = dev.env().pair(0);
        (
            pair.slack.mean(),
            pair.slack.percentile(95.0).unwrap_or(0),
            pair.slack.max().unwrap_or(0),
            pair.lvq.peak(),
            pair.lpq.peak(),
        )
    });
    let mut t = Table::with_columns(&[
        "benchmark",
        "mean slack",
        "p95 slack",
        "max slack",
        "lvq peak",
        "lpq peak",
    ]);
    let mut means = Vec::new();
    let mut p95s = Vec::new();
    for (b, &(slack_mean, slack_p95, slack_max, lvq_peak, lpq_peak)) in benches.iter().zip(&points)
    {
        means.push(slack_mean);
        p95s.push(slack_p95 as f64);
        t.row(vec![
            b.name().into(),
            fmt3(slack_mean),
            slack_p95.to_string(),
            slack_max.to_string(),
            lvq_peak.to_string(),
            lpq_peak.to_string(),
        ]);
    }
    let mut summary = BTreeMap::new();
    summary.insert("mean_slack".into(), mean(&means));
    summary.insert("p95_slack_mean".into(), mean(&p95s));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

/// Workload characterization: instruction mix and machine behaviour per
/// synthetic benchmark, next to the base-processor IPC (the credibility
/// table for the SPEC95 substitution in DESIGN.md §1).
pub fn workload_chars(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    struct Chars {
        ipc: f64,
        branches: f64,
        loads: f64,
        stores: f64,
        fp: f64,
        squash_rate: f64,
        working_set: u64,
    }
    let points = ctx.runner.run(benches.len(), |i| {
        let b = benches[i];
        let w = Workload::generate(b, scale.seed);
        // Static instruction mix over the program text.
        let insts = w.program.insts();
        let total = insts.len() as f64;
        let frac = |pred: &dyn Fn(&rmt_isa::Inst) -> bool| {
            insts.iter().filter(|i| pred(i)).count() as f64 / total * 100.0
        };
        // Dynamic behaviour on the base machine: IPC from the warm
        // measurement window (the same number every SMT-efficiency in this
        // suite divides by); squash rate over the whole run.
        let ipc = ctx
            .baselines
            .ipc(b, scale.seed, scale.warmup, scale.measure);
        let mut dev = rmt_core::device::BaseDevice::new(
            CoreConfig::base(),
            Default::default(),
            vec![LogicalThread::from(&w)],
        );
        let target = scale.warmup + scale.measure;
        assert!(
            dev.run_until_committed(target, target * 120),
            "{b} timed out"
        );
        let committed = dev.committed(0) as f64;
        Chars {
            ipc,
            branches: frac(&|i| i.op.is_cond_branch()),
            loads: frac(&|i| i.op.is_load()),
            stores: frac(&|i| i.op.is_store()),
            fp: frac(&|i| matches!(i.op.fu_class(), rmt_isa::FuClass::Fp)),
            squash_rate: dev.core().thread_stats(0).squashes as f64 / committed * 1_000.0,
            working_set: b.profile().working_set,
        }
    });

    let mut t = Table::with_columns(&[
        "benchmark",
        "IPC",
        "branch%",
        "load%",
        "store%",
        "fp%",
        "squash/1k",
        "working set",
    ]);
    let mut summary = BTreeMap::new();
    for (b, c) in benches.iter().zip(&points) {
        summary.insert(format!("{}_ipc", b.name()), c.ipc);
        t.row(vec![
            b.name().into(),
            fmt3(c.ipc),
            fmt_pct(c.branches),
            fmt_pct(c.loads),
            fmt_pct(c.stores),
            fmt_pct(c.fp),
            fmt3(c.squash_rate),
            format!("{} KB", c.working_set / 1024),
        ]);
    }
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

/// Next-line L1D prefetch ablation (extension; the paper's machine has no
/// prefetcher): base-machine IPC with and without it, per benchmark.
pub fn abl_prefetch(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    // Two jobs per benchmark: prefetch off (even) and on (odd).
    let ipcs = ctx.runner.run(benches.len() * 2, |i| {
        let pf = i % 2 == 1;
        let r = Experiment::new(DeviceKind::Base)
            .benchmark(benches[i / 2])
            .seed(scale.seed)
            .warmup(scale.warmup)
            .measure(scale.measure)
            .tweak_hierarchy(move |h| h.l1d_next_line_prefetch = pf)
            .max_cycle_factor(150)
            .run()
            .expect("prefetch run");
        ctx.runner.add_sim_cycles(r.cycles);
        r.ipc(0)
    });
    let mut t = Table::with_columns(&["benchmark", "no prefetch", "next-line prefetch", "speedup"]);
    let mut speedups = Vec::new();
    let mut summary = BTreeMap::new();
    for (b, pair) in benches.iter().zip(ipcs.chunks(2)) {
        let (off, on) = (pair[0], pair[1]);
        let speedup = on / off;
        speedups.push(speedup);
        t.row(vec![b.name().into(), fmt3(off), fmt3(on), fmt3(speedup)]);
    }
    summary.insert("mean_speedup".into(), mean(&speedups));
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

// ====================================================================
// Fault coverage
// ====================================================================

/// Fault-detection coverage across architectures and fault models,
/// including PSR's effect on permanent-fault coverage (§4.5). Each
/// campaign's injections are fanned across the runner.
pub fn fault_coverage(ctx: &FigureCtx, scale: SimScale, bench: Benchmark) -> FigureResult {
    let w = Workload::generate(bench, scale.seed);
    let cfg = CampaignConfig {
        injections: 12,
        warmup_commits: scale.warmup.min(3_000),
        window_commits: scale.measure.min(20_000),
        seed: 0xc0ffee,
    };
    let mut t = Table::with_columns(&[
        "machine",
        "fault",
        "detected",
        "masked",
        "silent",
        "coverage",
        "mean latency",
    ]);
    let mut summary = BTreeMap::new();
    let mut add = |t: &mut Table, machine: &str, r: rmt_faults::CampaignReport| {
        t.row(vec![
            machine.into(),
            r.kind.name().into(),
            r.detected.to_string(),
            r.masked.to_string(),
            r.silent.to_string(),
            fmt3(r.coverage()),
            fmt3(r.mean_latency()),
        ]);
        summary.insert(
            format!("{machine}_{}_coverage", r.kind.name()),
            r.coverage(),
        );
        summary.insert(
            format!("{machine}_{}_silent", r.kind.name()),
            r.silent as f64,
        );
    };
    // Base machine: no detection at all.
    let base_cfg = CoreConfig::base();
    for kind in [FaultKind::TransientReg, FaultKind::TransientSq] {
        add(
            &mut t,
            "base",
            par_base_campaign(&ctx.runner, &base_cfg, &w, kind, cfg),
        );
    }
    // SRT with PSR: all models.
    let mut psr_opts = SrtOptions::default();
    psr_opts.core.preferential_space_redundancy = true;
    for kind in FaultKind::ALL {
        add(
            &mut t,
            "srt",
            par_srt_campaign(&ctx.runner, &psr_opts, &w, kind, cfg),
        );
    }
    // SRT without PSR: permanent faults (the coverage PSR exists to fix).
    add(
        &mut t,
        "srt-nopsr",
        par_srt_campaign(
            &ctx.runner,
            &SrtOptions::default(),
            &w,
            FaultKind::PermanentFu,
            cfg,
        ),
    );
    // SRT with the ECC the paper mandates for the LVQ (§2.1): strikes on
    // LVQ entries are corrected before they can diverge the threads.
    let mut ecc_opts = psr_opts.clone();
    ecc_opts.env.lvq_ecc = true;
    add(
        &mut t,
        "srt-ecc",
        par_srt_campaign(&ctx.runner, &ecc_opts, &w, FaultKind::TransientLvq, cfg),
    );
    // Lockstep: permanent + register faults.
    let lock_opts = rmt_core::lockstep::LockstepOptions::lock8();
    for kind in [FaultKind::TransientReg, FaultKind::PermanentFu] {
        add(
            &mut t,
            "lockstep",
            par_lockstep_campaign(&ctx.runner, &lock_opts, &w, kind, cfg),
        );
    }
    FigureResult {
        table: t,
        summary,
        metrics: BTreeMap::new(),
    }
}

// ====================================================================
// Suite summary (the aggregate JSON artifact)
// ====================================================================

/// Cross-suite summary for the aggregate JSON report: per-benchmark base
/// IPC next to the single-thread SRT and CRT efficiencies, with every
/// run's metric snapshot attached.
pub fn suite_summary(ctx: &FigureCtx, scale: SimScale, benches: &[Benchmark]) -> FigureResult {
    let kinds = [DeviceKind::Srt, DeviceKind::Crt];
    let rows: Vec<Vec<Benchmark>> = benches.iter().map(|&b| vec![b]).collect();
    let (effs, metrics) = grid_eff(ctx, scale, &rows, &kinds);

    let mut t = Table::with_columns(&["benchmark", "base IPC", "SRT eff", "CRT eff"]);
    let mut srt_col = Vec::new();
    let mut crt_col = Vec::new();
    let mut summary = BTreeMap::new();
    for (b, row) in benches.iter().zip(&effs) {
        let ipc = ctx
            .baselines
            .ipc(*b, scale.seed, scale.warmup, scale.measure);
        srt_col.push(row[0]);
        crt_col.push(row[1]);
        summary.insert(format!("{}_base_ipc", b.name()), ipc);
        t.row(vec![b.name().into(), fmt3(ipc), fmt3(row[0]), fmt3(row[1])]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        fmt3(mean(&srt_col)),
        fmt3(mean(&crt_col)),
    ]);
    summary.insert("srt_mean_efficiency".into(), mean(&srt_col));
    summary.insert("crt_mean_efficiency".into(), mean(&crt_col));
    FigureResult {
        table: t,
        summary,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_BENCHES: &[Benchmark] = &[Benchmark::M88ksim, Benchmark::Ijpeg];

    #[test]
    fn table1_reflects_config() {
        let r = table1();
        assert_eq!(r.value("iq_size"), 128.0);
        assert_eq!(r.value("phys_regs"), 512.0);
        assert!(r.table.num_rows() >= 10);
    }

    #[test]
    fn fig2_depth() {
        let r = fig2_pipeline();
        assert_eq!(r.value("frontend_depth"), 10.0);
    }

    #[test]
    fn fig6_shape_matches_paper_orderings() {
        let ctx = FigureCtx::new(2);
        let r = fig6_srt_single(&ctx, SimScale::quick(), QUICK_BENCHES);
        // The orderings the paper reports: redundant execution costs
        // performance; SRT's optimized trailing thread beats naive
        // two-copy redundancy (Base2); removing store comparison (nosc)
        // recovers part of the loss; per-thread store queues help.
        let srt = r.value("SRT_mean_efficiency");
        let base2 = r.value("Base2_mean_efficiency");
        let nosc = r.value("SRT+nosc_mean_efficiency");
        let ptsq = r.value("SRT+ptsq_mean_efficiency");
        assert!(srt < 1.0, "SRT must degrade: {srt}");
        assert!(base2 < 1.0, "Base2 must degrade: {base2}");
        assert!(srt > base2 * 0.99, "SRT {srt} should beat Base2 {base2}");
        assert!(nosc >= srt * 0.98, "nosc should not be slower than SRT");
        assert!(ptsq >= srt * 0.99, "ptsq should not be slower than SRT");
        assert!(srt > 0.3, "SRT implausibly slow: {srt}");
        // One baseline per benchmark, however many device kinds ran.
        assert_eq!(ctx.baselines.len(), QUICK_BENCHES.len());
    }

    #[test]
    fn fig7_psr_kills_same_fu() {
        let r = fig7_psr(&FigureCtx::new(2), SimScale::quick(), &[Benchmark::M88ksim]);
        let before = r.value("same_fu_no_psr");
        let after = r.value("same_fu_with_psr");
        assert!(before > 0.25, "no-PSR same-FU fraction too low: {before}");
        assert!(after < 0.05, "PSR same-FU fraction too high: {after}");
    }

    #[test]
    fn fig9_srt_lengthens_store_lifetime() {
        let r = fig9_storeq(&FigureCtx::new(2), SimScale::quick(), QUICK_BENCHES);
        assert!(
            r.value("mean_lifetime_delta") > 5.0,
            "SRT must lengthen store lifetimes: {}",
            r.value("mean_lifetime_delta")
        );
    }

    #[test]
    fn fault_coverage_shape() {
        let r = fault_coverage(&FigureCtx::new(2), SimScale::quick(), Benchmark::Swim);
        // The base machine detects nothing; unmasked store corruption is
        // silent.
        assert_eq!(r.value("base_transient-sq_coverage"), 0.0);
        assert!(r.value("base_transient-sq_silent") >= 1.0);
        // SRT catches store-queue corruption.
        assert!(r.value("srt_transient-sq_coverage") > 0.6);
        // SRT never lets a register strike escape silently.
        assert_eq!(r.value("srt_transient-reg_silent"), 0.0);
    }
}
