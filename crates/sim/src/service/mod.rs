//! Job-granular service entry points: a parsed, validated request that a
//! daemon can digest, queue, and execute.
//!
//! A [`ServiceRequest`] is either a single machine run or a declarative
//! sensitivity sweep, expressed as a JSON document. Parsing resolves every
//! shorthand (a device-kind name becomes the kind's full six-section spec,
//! a scale name becomes explicit warmup/measure/seed numbers), so the
//! [`ServiceRequest::canonical_json`] form is fully self-describing and
//! two spellings of the same machine produce the same
//! [`ServiceRequest::digest`] — the content address the `rmt-serve` result
//! cache keys on. The simulator is deterministic, so one digest maps to
//! exactly one result document, bitwise, forever.
//!
//! [`ServiceRequest::execute`] runs the request synchronously and returns
//! the result document. A [`ProgressSink`] can be attached for live job
//! progress (instructions committed for runs, cells completed for
//! sweeps); observation only — the result is bit-for-bit identical with
//! or without one.
//!
//! # Examples
//!
//! ```
//! use rmt_sim::service::ServiceRequest;
//!
//! let doc = rmt_stats::json::parse(
//!     r#"{"type": "run", "spec": "SRT", "benches": ["m88ksim"],
//!         "scale": {"warmup": 500, "measure": 2000}}"#,
//! )
//! .unwrap();
//! let req = ServiceRequest::from_json(&doc).unwrap();
//! let result = req.execute(1, None).unwrap();
//! assert_eq!(result.get("kind").unwrap().as_str(), Some("SRT"));
//! ```

pub mod plan;

pub use plan::{CellRole, ClusterCell, ClusterPlan};

use crate::experiment::Experiment;
use crate::figures::{sensitivity_sweep, FigureCtx, SimScale, SweepConfig};
use crate::runner::ProgressSink;
use rmt_core::spec::{DeviceKind, MachineSpec};
use rmt_stats::Json;
use rmt_workloads::profile::ALL_BENCHMARKS;
use rmt_workloads::Benchmark;

/// Default cycle-budget multiplier for service runs — the same default an
/// [`Experiment`] carries, so a served run is bitwise identical to the
/// figure binaries' cells.
pub const RUN_MAX_CYCLE_FACTOR: u64 = 60;

/// Default cycle-budget multiplier for service sweeps — the `sweep`
/// binary's generous budget, because axes deliberately visit starved
/// configurations.
pub const SWEEP_MAX_CYCLE_FACTOR: u64 = 150;

/// One single-machine run: a resolved spec, benchmarks, and scale.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// The fully resolved machine.
    pub spec: MachineSpec,
    /// The logical threads to run.
    pub benches: Vec<Benchmark>,
    /// Warmup/measure/seed.
    pub scale: SimScale,
    /// Epoch width for time-series sampling (0 = off).
    pub epoch: u64,
    /// Cycle-budget multiplier.
    pub max_cycle_factor: u64,
}

/// One declarative sensitivity sweep (the `sweep` binary's file schema).
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The validated sweep: base spec, benchmarks, axes.
    pub cfg: SweepConfig,
    /// Warmup/measure/seed per cell.
    pub scale: SimScale,
    /// Cycle-budget multiplier per cell.
    pub max_cycle_factor: u64,
}

/// A parsed, validated service request.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// `{"type": "run", ...}` — one machine, one result document.
    Run(RunRequest),
    /// `{"type": "sweep", ...}` — a sensitivity sweep document.
    Sweep(SweepRequest),
}

fn parse_benches(doc: &Json) -> Result<Vec<Benchmark>, String> {
    let list = doc
        .get("benches")
        .and_then(Json::as_array)
        .ok_or("request needs a `benches` array")?;
    if list.is_empty() {
        return Err("`benches` must not be empty".into());
    }
    list.iter()
        .map(|v| {
            let n = v.as_str().ok_or("`benches` entries must be strings")?;
            ALL_BENCHMARKS
                .iter()
                .copied()
                .find(|b| b.name() == n)
                .ok_or_else(|| format!("unknown benchmark `{n}` in `benches`"))
        })
        .collect()
}

/// `"scale"`: a name (`"quick"`/`"standard"`/`"full"`), an explicit
/// `{"warmup", "measure", "seed"?}` object (seed defaults to 1), or
/// absent (quick — the serving default keeps accidental unbounded
/// submissions cheap).
fn parse_scale(doc: &Json) -> Result<SimScale, String> {
    match doc.get("scale") {
        None => Ok(SimScale::quick()),
        Some(Json::Str(name)) => match name.as_str() {
            "quick" => Ok(SimScale::quick()),
            "standard" => Ok(SimScale::standard()),
            "full" => Ok(SimScale::full()),
            other => Err(format!("unknown scale name `{other}`")),
        },
        Some(obj) => {
            let members = obj.members().ok_or("`scale` must be a name or object")?;
            for (k, _) in members {
                if !matches!(k.as_str(), "warmup" | "measure" | "seed") {
                    return Err(format!("unknown key `scale.{k}`"));
                }
            }
            let field = |k: &str| obj.get(k).and_then(Json::as_u64);
            Ok(SimScale {
                warmup: field("warmup").ok_or("`scale.warmup` must be a u64")?,
                measure: field("measure")
                    .filter(|&n| n >= 1)
                    .ok_or("`scale.measure` must be a u64 >= 1")?,
                seed: match obj.get("seed") {
                    None => 1,
                    Some(_) => field("seed").ok_or("`scale.seed` must be a u64")?,
                },
            })
        }
    }
}

fn parse_u64_or(doc: &Json, key: &str, default: u64) -> Result<u64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("`{key}` must be a u64")),
    }
}

/// `"spec"`/`"base"`-style machine field: a kind name or a full document.
fn parse_spec(v: &Json) -> Result<MachineSpec, String> {
    match v {
        Json::Str(kind_name) => {
            let kind = DeviceKind::from_name(kind_name)
                .ok_or_else(|| format!("unknown device kind `{kind_name}` in `spec`"))?;
            Ok(MachineSpec::for_kind(kind))
        }
        spec_doc => MachineSpec::from_json(spec_doc).map_err(|e| e.to_string()),
    }
}

fn reject_unknown_keys(doc: &Json, allowed: &[&str]) -> Result<(), String> {
    for (k, _) in doc.members().ok_or("request must be a JSON object")? {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown request key `{k}`"));
        }
    }
    Ok(())
}

fn scale_json(scale: SimScale) -> Json {
    Json::obj()
        .with("warmup", Json::U64(scale.warmup))
        .with("measure", Json::U64(scale.measure))
        .with("seed", Json::U64(scale.seed))
}

impl ServiceRequest {
    /// Parses and validates a request document:
    ///
    /// ```json
    /// {"type": "run",
    ///  "spec": "SRT",                  // kind name or full spec document
    ///  "benches": ["m88ksim", "gcc"],
    ///  "scale": "quick",               // name or {warmup, measure, seed}
    ///  "epoch": 0,                     // optional time-series sampling
    ///  "max_cycle_factor": 60}         // optional cycle budget
    /// ```
    ///
    /// ```json
    /// {"type": "sweep",
    ///  "sweep": {"name": ..., "base": ..., "benches": ..., "axes": ...},
    ///  "scale": "quick",
    ///  "max_cycle_factor": 150}
    /// ```
    ///
    /// Unknown keys are rejected (a typo must not silently drop a knob and
    /// collide with a different request's digest).
    ///
    /// # Errors
    ///
    /// A message naming the offending key.
    pub fn from_json(doc: &Json) -> Result<ServiceRequest, String> {
        match doc.get("type").and_then(Json::as_str) {
            Some("run") => {
                reject_unknown_keys(
                    doc,
                    &[
                        "type",
                        "spec",
                        "benches",
                        "scale",
                        "epoch",
                        "max_cycle_factor",
                    ],
                )?;
                let spec = parse_spec(doc.get("spec").ok_or("run request needs a `spec`")?)?;
                Ok(ServiceRequest::Run(RunRequest {
                    spec,
                    benches: parse_benches(doc)?,
                    scale: parse_scale(doc)?,
                    epoch: parse_u64_or(doc, "epoch", 0)?,
                    max_cycle_factor: parse_u64_or(doc, "max_cycle_factor", RUN_MAX_CYCLE_FACTOR)?,
                }))
            }
            Some("sweep") => {
                reject_unknown_keys(doc, &["type", "sweep", "scale", "max_cycle_factor"])?;
                let cfg = SweepConfig::from_json(
                    doc.get("sweep").ok_or("sweep request needs a `sweep`")?,
                )?;
                Ok(ServiceRequest::Sweep(SweepRequest {
                    cfg,
                    scale: parse_scale(doc)?,
                    max_cycle_factor: parse_u64_or(
                        doc,
                        "max_cycle_factor",
                        SWEEP_MAX_CYCLE_FACTOR,
                    )?,
                }))
            }
            Some(other) => Err(format!("unknown request `type` `{other}`")),
            None => Err("request needs a string `type` (`run` or `sweep`)".into()),
        }
    }

    /// The fully resolved request document: every shorthand expanded, every
    /// default made explicit. Two requests denote the same work if and only
    /// if their canonical documents digest identically.
    pub fn canonical_json(&self) -> Json {
        match self {
            ServiceRequest::Run(r) => Json::obj()
                .with("type", Json::Str("run".into()))
                .with("spec", r.spec.to_json())
                .with(
                    "benches",
                    Json::Arr(
                        r.benches
                            .iter()
                            .map(|b| Json::Str(b.name().to_string()))
                            .collect(),
                    ),
                )
                .with("scale", scale_json(r.scale))
                .with("epoch", Json::U64(r.epoch))
                .with("max_cycle_factor", Json::U64(r.max_cycle_factor)),
            ServiceRequest::Sweep(s) => {
                let axes = Json::Arr(
                    s.cfg
                        .axes
                        .iter()
                        .map(|a| {
                            Json::obj()
                                .with("path", Json::Str(a.path.clone()))
                                .with("values", Json::Arr(a.values.clone()))
                        })
                        .collect(),
                );
                let sweep = Json::obj()
                    .with("name", Json::Str(s.cfg.name.clone()))
                    .with("base", s.cfg.base.to_json())
                    .with(
                        "benches",
                        Json::Arr(
                            s.cfg
                                .benches
                                .iter()
                                .map(|b| Json::Str(b.name().to_string()))
                                .collect(),
                        ),
                    )
                    .with("axes", axes);
                Json::obj()
                    .with("type", Json::Str("sweep".into()))
                    .with("sweep", sweep)
                    .with("scale", scale_json(s.scale))
                    .with("max_cycle_factor", Json::U64(s.max_cycle_factor))
            }
        }
    }

    /// The request's content address:
    /// [`rmt_stats::digest::digest`] over [`ServiceRequest::canonical_json`].
    pub fn digest(&self) -> String {
        rmt_stats::digest::digest(&self.canonical_json())
    }

    /// Executes the request and returns its result document. `jobs` bounds
    /// the worker threads a sweep fans its cells across (a single run is
    /// one simulation regardless). The optional [`ProgressSink`] receives
    /// `(instructions committed, warmup + measure)` for runs and
    /// `(cells done, cells total)` for sweeps.
    ///
    /// Deterministic: the document is bitwise identical for any `jobs`
    /// value, with or without a sink — the property that makes the result
    /// cacheable under [`ServiceRequest::digest`].
    ///
    /// # Errors
    ///
    /// A message describing the simulation failure (cycle-budget timeout).
    pub fn execute(&self, jobs: usize, progress: Option<ProgressSink>) -> Result<Json, String> {
        match self {
            ServiceRequest::Run(r) => {
                let mut e = Experiment::from_spec(r.spec.clone())
                    .benchmarks(&r.benches)
                    .seed(r.scale.seed)
                    .warmup(r.scale.warmup)
                    .measure(r.scale.measure)
                    .max_cycle_factor(r.max_cycle_factor);
                if r.epoch > 0 {
                    e = e.epoch(r.epoch);
                }
                if let Some(sink) = progress {
                    e = e.with_progress(sink);
                }
                let out = e.run().map_err(|e| e.to_string())?;
                let per_thread = Json::Arr(
                    out.per_thread
                        .iter()
                        .map(|t| {
                            Json::obj()
                                .with("benchmark", Json::Str(t.benchmark.name().to_string()))
                                .with("committed", Json::U64(t.committed))
                                .with("cycles", Json::U64(t.cycles))
                                .with("ipc", Json::F64(t.ipc()))
                        })
                        .collect(),
                );
                Ok(Json::obj()
                    .with("type", Json::Str("run".into()))
                    .with("kind", Json::Str(out.kind.name().to_string()))
                    .with("cycles", Json::U64(out.cycles))
                    .with("per_thread", per_thread)
                    .with("faults_detected", Json::U64(out.faults_detected as u64))
                    .with("metrics", out.metrics.to_json())
                    .with("timeseries", out.timeseries.to_json())
                    .with("config", out.config))
            }
            ServiceRequest::Sweep(s) => {
                let mut ctx = FigureCtx::new(jobs);
                ctx.runner.set_hook(progress);
                let (r, rows) = sensitivity_sweep(&ctx, s.scale, &s.cfg, s.max_cycle_factor);
                let mut summary = Json::obj();
                for (k, v) in &r.summary {
                    summary.set(k, Json::F64(*v));
                }
                Ok(Json::obj()
                    .with("type", Json::Str("sweep".into()))
                    .with("name", Json::Str(s.cfg.name.clone()))
                    .with("summary", summary)
                    .with(
                        "sweep",
                        Json::Arr(rows.iter().map(|row| row.to_json()).collect()),
                    )
                    .with("config", s.cfg.base.to_json()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_stats::json::parse;

    fn run_doc() -> Json {
        parse(
            r#"{"type": "run", "spec": "SRT", "benches": ["m88ksim"],
                "scale": {"warmup": 500, "measure": 2000, "seed": 3}}"#,
        )
        .unwrap()
    }

    #[test]
    fn parses_and_resolves_a_run_request() {
        let req = ServiceRequest::from_json(&run_doc()).unwrap();
        let ServiceRequest::Run(r) = &req else {
            panic!("expected a run request");
        };
        assert_eq!(r.spec.kind(), DeviceKind::Srt);
        assert_eq!(r.benches, vec![Benchmark::M88ksim]);
        assert_eq!(r.scale.seed, 3);
        assert_eq!(r.epoch, 0);
        assert_eq!(r.max_cycle_factor, RUN_MAX_CYCLE_FACTOR);
        // The canonical form is fully explicit and reparses to the same
        // request (same digest).
        let canon = req.canonical_json();
        assert_eq!(canon.get("epoch").unwrap().as_u64(), Some(0));
        let again = ServiceRequest::from_json(&canon).unwrap();
        assert_eq!(again.digest(), req.digest());
    }

    #[test]
    fn kind_name_and_full_spec_share_a_digest() {
        let by_name = ServiceRequest::from_json(&run_doc()).unwrap();
        let mut doc = run_doc();
        doc.set("spec", MachineSpec::for_kind(DeviceKind::Srt).to_json());
        let by_spec = ServiceRequest::from_json(&doc).unwrap();
        assert_eq!(by_name.digest(), by_spec.digest());
        // Any machine difference splits the digest.
        let mut spec = MachineSpec::for_kind(DeviceKind::Srt);
        spec.set("core.sq_entries", Json::U64(16)).unwrap();
        doc.set("spec", spec.to_json());
        let tweaked = ServiceRequest::from_json(&doc).unwrap();
        assert_ne!(by_name.digest(), tweaked.digest());
    }

    #[test]
    fn scale_names_resolve_to_explicit_numbers() {
        let mut doc = run_doc();
        doc.set("scale", Json::Str("quick".into()));
        let named = ServiceRequest::from_json(&doc).unwrap();
        doc.set(
            "scale",
            parse(r#"{"warmup": 2000, "measure": 10000, "seed": 1}"#).unwrap(),
        );
        let explicit = ServiceRequest::from_json(&doc).unwrap();
        assert_eq!(named.digest(), explicit.digest());
        // Absent scale is the quick default.
        let bare = parse(r#"{"type": "run", "spec": "SRT", "benches": ["m88ksim"]}"#).unwrap();
        assert_eq!(
            ServiceRequest::from_json(&bare).unwrap().digest(),
            named.digest()
        );
    }

    #[test]
    fn rejects_malformed_requests_by_name() {
        let reject = |json: &str, needle: &str| {
            let err = ServiceRequest::from_json(&parse(json).unwrap()).unwrap_err();
            assert!(err.contains(needle), "`{err}` does not name `{needle}`");
        };
        reject(r#"{"spec": "SRT"}"#, "type");
        reject(r#"{"type": "walk"}"#, "walk");
        reject(r#"{"type": "run", "benches": ["m88ksim"]}"#, "spec");
        reject(
            r#"{"type": "run", "spec": "NotAKind", "benches": ["gcc"]}"#,
            "NotAKind",
        );
        reject(
            r#"{"type": "run", "spec": "SRT", "benches": []}"#,
            "benches",
        );
        reject(
            r#"{"type": "run", "spec": "SRT", "benches": ["quake"]}"#,
            "quake",
        );
        reject(
            r#"{"type": "run", "spec": "SRT", "benches": ["gcc"], "scale": "warp"}"#,
            "warp",
        );
        reject(
            r#"{"type": "run", "spec": "SRT", "benches": ["gcc"], "scale": {"warmup": 1}}"#,
            "scale.measure",
        );
        reject(
            r#"{"type": "run", "spec": "SRT", "benches": ["gcc"], "speed": 9}"#,
            "speed",
        );
        reject(r#"{"type": "sweep"}"#, "sweep");
    }

    #[test]
    fn executes_a_run_bitwise_identical_to_the_direct_experiment() {
        let req = ServiceRequest::from_json(&run_doc()).unwrap();
        let served = req.execute(1, None).unwrap();
        let direct = Experiment::new(DeviceKind::Srt)
            .benchmark(Benchmark::M88ksim)
            .seed(3)
            .warmup(500)
            .measure(2_000)
            .run()
            .unwrap();
        assert_eq!(served.get("cycles").unwrap().as_u64(), Some(direct.cycles));
        assert_eq!(
            served.get("metrics").unwrap().encode(),
            direct.metrics.to_json().encode(),
            "served metrics must be bitwise identical to the direct run"
        );
        assert_eq!(
            served.get("config").unwrap().encode(),
            direct.config.encode()
        );
        // And deterministic across repeated executions and job counts.
        assert_eq!(served.encode(), req.execute(4, None).unwrap().encode());
    }

    #[test]
    fn executes_a_sweep_with_cell_progress() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let doc = parse(
            r#"{"type": "sweep",
                "sweep": {"name": "tiny", "base": "SRT", "benches": ["m88ksim"],
                          "axes": [{"path": "core.sq_entries", "values": [16, 64]}]},
                "scale": {"warmup": 500, "measure": 2000}}"#,
        )
        .unwrap();
        let req = ServiceRequest::from_json(&doc).unwrap();
        let cells = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&cells);
        let sink = ProgressSink::new(move |done, total| {
            assert!(done <= total);
            c.store(done, Ordering::Relaxed);
        });
        let out = req.execute(2, Some(sink)).unwrap();
        assert!(cells.load(Ordering::Relaxed) >= 1, "sweep progress");
        assert_eq!(out.get("sweep").unwrap().as_array().unwrap().len(), 2);
        assert!(out
            .get("summary")
            .unwrap()
            .get("core.sq_entries=16")
            .is_some());
        // Sweep results are `jobs`-invariant like everything else.
        assert_eq!(out.encode(), req.execute(1, None).unwrap().encode());
    }
}
