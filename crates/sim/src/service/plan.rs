//! Cell expansion and deterministic merge for distributed execution.
//!
//! A [`ServiceRequest`] is either one simulation (a run) or a grid of
//! independent simulations (a sweep: every `(axis value, benchmark)`
//! cell plus one Base-machine denominator per benchmark). A
//! [`ClusterPlan`] makes that grid explicit: [`ClusterPlan::expand`]
//! turns a request into per-cell **run** requests — each a full
//! [`ServiceRequest`] with its own canonical digest, dispatchable to any
//! `rmt-serve` worker — and [`ClusterPlan::merge`] folds the per-cell
//! result documents back into the exact document
//! [`ServiceRequest::execute`] would have produced in one process.
//!
//! The merge is *deterministic by construction*: cells are keyed by
//! content digest and folded in declarative grid order, so the merged
//! document is bitwise independent of which worker produced each cell,
//! in what order results arrived, how many duplicates were dispatched,
//! or how many attempts failed along the way. This is the property the
//! `rmt-cluster` coordinator's correctness gate rides on, and it is
//! enforced by unit tests here plus a shuffling/duplicating property
//! test in the cluster crate.

use super::{RunRequest, ServiceRequest, SweepRequest, RUN_MAX_CYCLE_FACTOR};
use crate::figures::SweepRow;
use rmt_core::spec::{DeviceKind, MachineSpec};
use rmt_stats::metrics::mean;
use rmt_stats::Json;
use rmt_workloads::Benchmark;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// What one expanded cell contributes to the merged document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellRole {
    /// The whole request was a single run; the cell's result *is* the
    /// merged document.
    Single,
    /// A single-thread Base-machine run — the SMT-efficiency denominator
    /// for `bench` (shared by every sweep row of that benchmark).
    Baseline {
        /// The benchmark whose denominator this cell computes.
        bench: Benchmark,
    },
    /// One sweep grid cell: axis `axis`, value index `value`, benchmark
    /// `bench` (indices into the sweep config's declarative grid).
    Grid {
        /// Axis index into `cfg.axes`.
        axis: usize,
        /// Value index into `cfg.axes[axis].values`.
        value: usize,
        /// The benchmark this cell ran.
        bench: Benchmark,
    },
}

/// One dispatchable unit of work: a fully resolved run request plus its
/// content digest (the key its result is cached, deduplicated and merged
/// under).
#[derive(Debug, Clone)]
pub struct ClusterCell {
    /// Position in the plan (grid order; stable across expansions).
    pub index: usize,
    /// Where the cell's result lands in the merged document.
    pub role: CellRole,
    /// The cell's own service request (always a run).
    pub request: ServiceRequest,
    /// [`ServiceRequest::digest`] of `request`, precomputed.
    pub digest: String,
}

/// An expanded request: the original plus its dispatchable cells.
///
/// Two cells may share a digest (e.g. an axis listing the same value
/// twice); a coordinator should deduplicate *work* by digest while the
/// merge looks results up by digest, so duplicates cost nothing.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    request: ServiceRequest,
    /// The cells, in declarative grid order (baselines first, then
    /// axis-major, value, benchmark-innermost).
    pub cells: Vec<ClusterCell>,
}

fn run_cell(spec: MachineSpec, bench: Benchmark, s: &SweepRequest, factor: u64) -> ServiceRequest {
    ServiceRequest::Run(RunRequest {
        spec,
        benches: vec![bench],
        scale: s.scale,
        epoch: 0,
        max_cycle_factor: factor,
    })
}

/// Thread-0 IPC of a run result document, recomputed from the exact
/// integers the simulator reported — the same `committed / cycles`
/// division [`ThreadOutcome::ipc`](crate::outcome::ThreadOutcome::ipc)
/// performs, so the value is bitwise identical to an in-process run.
fn ipc_of(result: &Json, digest: &str) -> Result<f64, String> {
    let t = result
        .get("per_thread")
        .and_then(Json::as_array)
        .and_then(<[Json]>::first)
        .ok_or_else(|| format!("cell {digest}: result lacks `per_thread[0]`"))?;
    let field = |k: &str| {
        t.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell {digest}: `per_thread[0].{k}` is not a u64"))
    };
    let committed = field("committed")?;
    let cycles = field("cycles")?;
    Ok(if cycles == 0 {
        0.0
    } else {
        committed as f64 / cycles as f64
    })
}

impl ClusterPlan {
    /// Expands a request into its dispatchable cells.
    ///
    /// A **run** request is one cell (a single simulation is already the
    /// unit of work). A **sweep** request becomes one Base-machine
    /// baseline cell per benchmark — the denominators
    /// [`BaselineCache`](crate::BaselineCache) would compute in-process,
    /// with the default run cycle budget — followed by one cell per
    /// `(axis, value, benchmark)` grid position carrying the sweep's own
    /// cycle budget, exactly the experiments
    /// [`sensitivity_sweep`](crate::figures::sensitivity_sweep) fans out.
    pub fn expand(request: &ServiceRequest) -> ClusterPlan {
        let mut cells = Vec::new();
        match request {
            ServiceRequest::Run(_) => {
                cells.push((CellRole::Single, request.clone()));
            }
            ServiceRequest::Sweep(s) => {
                for &bench in &s.cfg.benches {
                    let spec = MachineSpec::for_kind(DeviceKind::Base);
                    cells.push((
                        CellRole::Baseline { bench },
                        run_cell(spec, bench, s, RUN_MAX_CYCLE_FACTOR),
                    ));
                }
                for (a, axis) in s.cfg.axes.iter().enumerate() {
                    for (v, value) in axis.values.iter().enumerate() {
                        for &bench in &s.cfg.benches {
                            let mut spec = s.cfg.base.clone();
                            spec.set(&axis.path, value.clone())
                                .expect("sweep axes are validated at parse time");
                            cells.push((
                                CellRole::Grid {
                                    axis: a,
                                    value: v,
                                    bench,
                                },
                                run_cell(spec, bench, s, s.max_cycle_factor),
                            ));
                        }
                    }
                }
            }
        }
        ClusterPlan {
            request: request.clone(),
            cells: cells
                .into_iter()
                .enumerate()
                .map(|(index, (role, request))| {
                    let digest = request.digest();
                    ClusterCell {
                        index,
                        role,
                        request,
                        digest,
                    }
                })
                .collect(),
        }
    }

    /// The request this plan expands.
    pub fn request(&self) -> &ServiceRequest {
        &self.request
    }

    /// The distinct digests a coordinator must obtain results for
    /// (duplicate grid cells collapse onto one unit of work).
    pub fn distinct_digests(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for cell in &self.cells {
            if !seen.contains(&cell.digest.as_str()) {
                seen.push(cell.digest.as_str());
            }
        }
        seen
    }

    /// Folds per-cell result documents (keyed by cell digest) into the
    /// document [`ServiceRequest::execute`] produces for the original
    /// request — bitwise, regardless of who computed each cell or in what
    /// order the map was populated. Efficiencies are recomputed from each
    /// cell's integer `committed`/`cycles` pair, the identical float
    /// operations the in-process sweep performs.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed cell digest.
    pub fn merge(&self, results: &HashMap<String, Json>) -> Result<Json, String> {
        let lookup = |digest: &str| {
            results
                .get(digest)
                .ok_or_else(|| format!("merge is missing the result for cell {digest}"))
        };
        let s = match &self.request {
            ServiceRequest::Run(_) => {
                let cell = &self.cells[0];
                return Ok(lookup(&cell.digest)?.clone());
            }
            ServiceRequest::Sweep(s) => s,
        };
        // Denominators first: one Base IPC per benchmark.
        let mut base_ipc: HashMap<Benchmark, f64> = HashMap::new();
        for cell in &self.cells {
            if let CellRole::Baseline { bench } = cell.role {
                base_ipc.insert(bench, ipc_of(lookup(&cell.digest)?, &cell.digest)?);
            }
        }
        // Grid cells in declarative order -> rows, exactly like
        // `sensitivity_sweep` + `ServiceRequest::execute`.
        let nb = s.cfg.benches.len();
        let mut effs: Vec<f64> = Vec::with_capacity(nb);
        let mut rows: Vec<SweepRow> = Vec::new();
        let mut summary = BTreeMap::new();
        for cell in &self.cells {
            let CellRole::Grid { axis, value, bench } = cell.role else {
                continue;
            };
            let denom = base_ipc[&bench];
            effs.push(ipc_of(lookup(&cell.digest)?, &cell.digest)? / denom);
            if effs.len() == nb {
                let ax = &s.cfg.axes[axis];
                let val = &ax.values[value];
                let m = mean(&effs);
                summary.insert(format!("{}={}", ax.path, val.encode()), m);
                let mut spec = s.cfg.base.clone();
                spec.set(&ax.path, val.clone())
                    .expect("sweep axes are validated at parse time");
                rows.push(SweepRow {
                    path: ax.path.clone(),
                    value: val.clone(),
                    effs: s.cfg.benches.iter().copied().zip(effs.drain(..)).collect(),
                    mean_eff: m,
                    spec,
                });
            }
        }
        let mut summary_json = Json::obj();
        for (k, v) in &summary {
            summary_json.set(k, Json::F64(*v));
        }
        Ok(Json::obj()
            .with("type", Json::Str("sweep".into()))
            .with("name", Json::Str(s.cfg.name.clone()))
            .with("summary", summary_json)
            .with(
                "sweep",
                Json::Arr(rows.iter().map(SweepRow::to_json).collect()),
            )
            .with("config", s.cfg.base.to_json()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_stats::json::parse;

    fn sweep_request() -> ServiceRequest {
        let doc = parse(
            r#"{"type": "sweep",
                "sweep": {"name": "tiny", "base": "SRT",
                          "benches": ["m88ksim", "ijpeg"],
                          "axes": [{"path": "core.sq_entries", "values": [16, 64]}]},
                "scale": {"warmup": 500, "measure": 2000}}"#,
        )
        .unwrap();
        ServiceRequest::from_json(&doc).unwrap()
    }

    #[test]
    fn expands_a_sweep_into_baselines_plus_grid_cells() {
        let plan = ClusterPlan::expand(&sweep_request());
        // 2 baselines + 2 values x 2 benches.
        assert_eq!(plan.cells.len(), 6);
        assert_eq!(
            plan.cells
                .iter()
                .filter(|c| matches!(c.role, CellRole::Baseline { .. }))
                .count(),
            2
        );
        // Every cell re-digests from its own canonical request, and the
        // digests are pairwise distinct here (distinct machines/benches).
        for cell in &plan.cells {
            assert_eq!(cell.digest, cell.request.digest());
            let reparsed = ServiceRequest::from_json(&cell.request.canonical_json()).unwrap();
            assert_eq!(reparsed.digest(), cell.digest);
        }
        assert_eq!(plan.distinct_digests().len(), 6);
        // Baseline cells run the Base machine with the run-default cycle
        // budget; grid cells carry the sweep's own budget.
        let ServiceRequest::Run(b) = &plan.cells[0].request else {
            panic!("baseline cell must be a run");
        };
        assert_eq!(b.spec.kind(), DeviceKind::Base);
        assert_eq!(b.max_cycle_factor, RUN_MAX_CYCLE_FACTOR);
        let ServiceRequest::Run(g) = &plan.cells[2].request else {
            panic!("grid cell must be a run");
        };
        assert_eq!(g.spec.kind(), DeviceKind::Srt);
        assert_eq!(g.max_cycle_factor, super::super::SWEEP_MAX_CYCLE_FACTOR);
    }

    #[test]
    fn a_run_request_expands_to_one_cell_and_merges_to_its_result() {
        let doc = parse(
            r#"{"type": "run", "spec": "SRT", "benches": ["m88ksim"],
                "scale": {"warmup": 500, "measure": 2000}}"#,
        )
        .unwrap();
        let req = ServiceRequest::from_json(&doc).unwrap();
        let plan = ClusterPlan::expand(&req);
        assert_eq!(plan.cells.len(), 1);
        assert_eq!(plan.cells[0].role, CellRole::Single);
        assert_eq!(plan.cells[0].digest, req.digest());
        let direct = req.execute(1, None).unwrap();
        let mut results = HashMap::new();
        results.insert(req.digest(), direct.clone());
        let merged = plan.merge(&results).unwrap();
        assert_eq!(merged.encode(), direct.encode());
    }

    #[test]
    fn merged_sweep_is_bitwise_identical_to_single_process_execute() {
        let req = sweep_request();
        let single = req.execute(2, None).unwrap();
        let plan = ClusterPlan::expand(&req);
        // Execute every cell independently, as a worker fleet would.
        let mut results = HashMap::new();
        for cell in &plan.cells {
            results.insert(cell.digest.clone(), cell.request.execute(1, None).unwrap());
        }
        let merged = plan.merge(&results).unwrap();
        assert_eq!(
            merged.encode(),
            single.encode(),
            "merged cells must reproduce the one-process sweep document bitwise"
        );
    }

    #[test]
    fn merge_names_a_missing_cell() {
        let plan = ClusterPlan::expand(&sweep_request());
        let err = plan.merge(&HashMap::new()).unwrap_err();
        assert!(err.contains("missing the result"), "{err}");
        assert!(err.contains(&plan.cells[0].digest), "{err}");
    }
}
