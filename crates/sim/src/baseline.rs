//! Cached single-thread base-processor IPCs — the denominators of the
//! paper's SMT-efficiency metric (§6.4): "the IPC of the thread when it
//! would run in single-thread mode through the same SMT machine".

use crate::experiment::{DeviceKind, Experiment};
use rmt_workloads::Benchmark;
use std::collections::HashMap;

/// Caches single-thread base IPCs per `(benchmark, seed, warmup, measure)`.
#[derive(Debug, Default)]
pub struct BaselineCache {
    cache: HashMap<(Benchmark, u64, u64, u64), f64>,
}

impl BaselineCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-thread base-processor IPC of `bench` under the given run
    /// parameters (computed once, then cached).
    ///
    /// # Panics
    ///
    /// Panics if the baseline simulation itself fails (it never should).
    pub fn ipc(&mut self, bench: Benchmark, seed: u64, warmup: u64, measure: u64) -> f64 {
        *self
            .cache
            .entry((bench, seed, warmup, measure))
            .or_insert_with(|| {
                Experiment::new(DeviceKind::Base)
                    .benchmark(bench)
                    .seed(seed)
                    .warmup(warmup)
                    .measure(measure)
                    .run()
                    .expect("baseline run must succeed")
                    .ipc(0)
            })
    }

    /// Number of cached baselines.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_reuses() {
        let mut c = BaselineCache::new();
        assert!(c.is_empty());
        let a = c.ipc(Benchmark::M88ksim, 1, 500, 2_000);
        assert_eq!(c.len(), 1);
        let b = c.ipc(Benchmark::M88ksim, 1, 500, 2_000);
        assert_eq!(c.len(), 1);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let mut c = BaselineCache::new();
        c.ipc(Benchmark::Li, 1, 500, 2_000);
        c.ipc(Benchmark::Li, 2, 500, 2_000);
        assert_eq!(c.len(), 2);
    }
}
