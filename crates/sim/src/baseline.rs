//! Cached single-thread base-processor IPCs — the denominators of the
//! paper's SMT-efficiency metric (§6.4): "the IPC of the thread when it
//! would run in single-thread mode through the same SMT machine".
//!
//! The cache is shared across an entire figure suite and across the
//! [`runner`](crate::runner)'s worker threads: each distinct
//! `(benchmark, seed, warmup, measure)` baseline is simulated **exactly
//! once** (per-key [`OnceLock`] cells — a second thread asking for a key
//! that is being computed blocks on the cell, it does not recompute), and
//! every caller observes bitwise the same IPC, which keeps parallel figure
//! runs identical to sequential ones.

use crate::experiment::{DeviceKind, Experiment};
use rmt_stats::Json;
use rmt_workloads::Benchmark;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type Key = (Benchmark, u64, u64, u64);

/// Caches single-thread base IPCs per `(benchmark, seed, warmup, measure)`.
///
/// All methods take `&self`; interior mutability makes one instance
/// shareable by reference across the runner's scoped worker threads.
#[derive(Debug, Default)]
pub struct BaselineCache {
    cells: Mutex<HashMap<Key, Arc<OnceLock<f64>>>>,
}

impl BaselineCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-thread base-processor IPC of `bench` under the given run
    /// parameters (computed once per key, then cached).
    ///
    /// # Panics
    ///
    /// Panics if the baseline simulation itself fails (it never should).
    pub fn ipc(&self, bench: Benchmark, seed: u64, warmup: u64, measure: u64) -> f64 {
        self.ipc_with(bench, seed, warmup, measure, &[])
    }

    /// [`BaselineCache::ipc`] with machine-spec key-path overrides applied
    /// to the baseline experiment (the `scheme.kind` path is skipped — the
    /// denominator is always the base processor). The cache key does not
    /// include the overrides: one cache belongs to one
    /// [`FigureCtx`](crate::figures::FigureCtx), whose override set is
    /// fixed for its lifetime.
    ///
    /// # Panics
    ///
    /// Panics if an override names an unknown key path or the baseline
    /// simulation fails.
    pub fn ipc_with(
        &self,
        bench: Benchmark,
        seed: u64,
        warmup: u64,
        measure: u64,
        overrides: &[(String, Json)],
    ) -> f64 {
        let cell = {
            let mut map = self.cells.lock().expect("baseline cache poisoned");
            map.entry((bench, seed, warmup, measure))
                .or_default()
                .clone()
        };
        // The map lock is released before simulating: concurrent misses on
        // *different* keys compute in parallel; a concurrent miss on the
        // *same* key blocks on this cell until the first computation lands.
        *cell.get_or_init(|| {
            let mut e = Experiment::new(DeviceKind::Base)
                .benchmark(bench)
                .seed(seed)
                .warmup(warmup)
                .measure(measure);
            for (path, v) in overrides {
                if path == "scheme.kind" {
                    continue;
                }
                e = e.set(path, v.clone());
            }
            e.run().expect("baseline run must succeed").ipc(0)
        })
    }

    /// Number of distinct keys requested so far (computed or in flight).
    pub fn len(&self) -> usize {
        self.cells.lock().expect("baseline cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_reuses() {
        let c = BaselineCache::new();
        assert!(c.is_empty());
        let a = c.ipc(Benchmark::M88ksim, 1, 500, 2_000);
        assert_eq!(c.len(), 1);
        let b = c.ipc(Benchmark::M88ksim, 1, 500, 2_000);
        assert_eq!(c.len(), 1);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let c = BaselineCache::new();
        c.ipc(Benchmark::Li, 1, 500, 2_000);
        c.ipc(Benchmark::Li, 2, 500, 2_000);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn concurrent_hits_agree_bitwise() {
        let c = BaselineCache::new();
        let values: Vec<f64> =
            crate::runner::Runner::new(4).run(8, |_| c.ipc(Benchmark::M88ksim, 1, 400, 1_500));
        assert_eq!(c.len(), 1, "one key must be simulated exactly once");
        assert!(values.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }
}
