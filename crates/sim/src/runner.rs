//! Deterministic parallel execution of independent simulation points.
//!
//! The evaluation is a large cross-product — device kinds × benchmarks ×
//! mixes × fault injections — and every data point is an independent
//! simulation. [`Runner`] fans those points across a scoped-thread
//! work-stealing pool (no external dependencies) while keeping results
//! **bitwise identical** to sequential execution:
//!
//! * each job is a pure function of its index — per-job randomness comes
//!   from [`rmt_stats::rng::split_seed`], never from a stream consumed in
//!   scheduling order;
//! * results are gathered into a slot per job index, so the output vector
//!   is ordered by submission, not completion;
//! * shared state ([`crate::BaselineCache`]) memoizes through
//!   [`std::sync::OnceLock`], so a value is computed once and every thread
//!   observes the same bits.
//!
//! Under those rules `Runner::new(1)` and `Runner::new(64)` produce equal
//! results for any job set, which the test suite asserts on whole figures
//! and fault campaigns.
//!
//! # Examples
//!
//! ```
//! use rmt_sim::runner::Runner;
//!
//! let squares = Runner::new(4).run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use rmt_core::device::SrtOptions;
use rmt_core::lockstep::LockstepOptions;
use rmt_faults::campaign::{
    base_injection, crt_injection, lockstep_injection, srt_injection, srt_injection_forensic,
};
use rmt_faults::{CampaignConfig, CampaignReport, FaultForensics, FaultKind};
use rmt_pipeline::CoreConfig;
use rmt_workloads::Workload;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A progress observer: a shareable `(done, total)` callback.
///
/// Pure observation by contract — a sink must not influence the work it
/// watches (the serving layer feeds these into job-status gauges, and the
/// determinism tests run with and without one installed). Cloning shares
/// the underlying callback.
#[derive(Clone)]
pub struct ProgressSink(Arc<dyn Fn(u64, u64) + Send + Sync>);

impl ProgressSink {
    /// Wraps a callback. `done` counts completed units out of `total`;
    /// callers may be invoked from any worker thread, concurrently.
    pub fn new(f: impl Fn(u64, u64) + Send + Sync + 'static) -> Self {
        ProgressSink(Arc::new(f))
    }

    /// Reports `done` completed units out of `total`.
    pub fn report(&self, done: u64, total: u64) {
        (self.0)(done, total);
    }
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressSink(..)")
    }
}

/// A deterministic parallel job pool.
///
/// Cheap to construct (no threads live between [`Runner::run`] calls; each
/// call spawns a scoped pool and joins it before returning).
#[derive(Debug)]
pub struct Runner {
    jobs: usize,
    executed: AtomicUsize,
    /// Simulated cycles reported by figure drivers (host throughput gauge).
    sim_cycles: AtomicU64,
    /// Wall nanoseconds workers spent inside jobs, summed across workers.
    busy_nanos: AtomicU64,
    /// Print jobs-completed/ETA lines to stderr (the `--progress` flag).
    /// Stderr only — the deterministic payload never sees it.
    progress: AtomicBool,
    /// Machine-consumable twin of `progress`: called with
    /// `(jobs done, jobs total)` after every job of a `run` call (the
    /// serving layer's live job-progress gauge).
    hook: Option<ProgressSink>,
}

impl Runner {
    /// A runner with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            executed: AtomicUsize::new(0),
            sim_cycles: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            progress: AtomicBool::new(false),
            hook: None,
        }
    }

    /// Installs (or clears) a [`ProgressSink`] to call with
    /// `(jobs done, jobs total)` after every completed job. Like the
    /// stderr `--progress` lines, the sink is pure observation: job
    /// results are bit-for-bit the same with or without one.
    pub fn set_hook(&mut self, hook: Option<ProgressSink>) {
        self.hook = hook;
    }

    /// Enables (or disables) periodic progress lines on stderr. Progress
    /// reporting is pure observation: job results are bit-for-bit the same
    /// with it on or off.
    pub fn set_progress(&mut self, enabled: bool) {
        *self.progress.get_mut() = enabled;
    }

    /// Whether progress reporting is on.
    pub fn progress(&self) -> bool {
        self.progress.load(Ordering::Relaxed)
    }

    /// A runner sized to the host's available parallelism.
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total jobs executed over this runner's lifetime (all `run` calls).
    pub fn jobs_executed(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }

    /// Credits `n` simulated cycles to this runner's throughput gauge.
    ///
    /// Figure drivers call this with each experiment's cycle count; the
    /// total feeds the host `sim cycles/sec` gauge in JSON reports. The
    /// counter is deterministic (a pure sum over jobs); the wall-time side
    /// is not, so the two are reported in separate JSON sections.
    pub fn add_sim_cycles(&self, n: u64) {
        self.sim_cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Simulated cycles credited so far via [`Runner::add_sim_cycles`].
    pub fn sim_cycles(&self) -> u64 {
        self.sim_cycles.load(Ordering::Relaxed)
    }

    /// Wall seconds workers have spent inside jobs, summed across workers
    /// (busy time, not elapsed time; non-deterministic).
    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Simulated cycles per worker-busy-second — the host-throughput gauge
    /// reported under `host/` in JSON results (0.0 before any timed job).
    pub fn sim_rate(&self) -> f64 {
        let busy = self.busy_seconds();
        if busy > 0.0 {
            self.sim_cycles() as f64 / busy
        } else {
            0.0
        }
    }

    /// Runs `job(0..n)` and returns the results ordered by index.
    ///
    /// Jobs must be independent: `job` may not communicate between indices
    /// except through synchronization that yields order-independent values
    /// (e.g. a [`OnceLock`](std::sync::OnceLock)-memoized cache). Under
    /// that contract the result is identical for any worker count.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by any job.
    pub fn run<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.executed.fetch_add(n, Ordering::Relaxed);
        let started = Instant::now();
        let done = AtomicUsize::new(0);
        let report = self.progress.load(Ordering::Relaxed) && n > 0;
        let notify = report || self.hook.is_some();
        let timed = |i: usize| {
            let t0 = Instant::now();
            let out = job(i);
            self.busy_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if notify {
                let c = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(hook) = &self.hook {
                    hook.report(c as u64, n as u64);
                }
                // Roughly ten lines per run (always the final one), on
                // stderr only: the deterministic payload is untouched.
                let step = (n / 10).max(1);
                if report && (c.is_multiple_of(step) || c == n) {
                    let elapsed = started.elapsed().as_secs_f64();
                    let eta = elapsed / c as f64 * (n - c) as f64;
                    eprintln!("[runner] {c}/{n} jobs done, {elapsed:.1}s elapsed, ~{eta:.1}s left");
                }
            }
            out
        };
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return (0..n).map(timed).collect();
        }

        // One deque per worker, seeded with a contiguous block of indices
        // (neighbouring jobs often share baselines, so block ownership
        // maximizes cache-cell reuse within a worker). Idle workers steal
        // from the *back* of a victim's deque — the classic split: owners
        // drain front-to-back, thieves take the coldest work.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = n * w / workers;
                let hi = n * (w + 1) / workers;
                Mutex::new((lo..hi).collect())
            })
            .collect();
        // One result slot per job; a slot is written exactly once, by
        // whichever worker claimed that index, so gathering is by index
        // and completion order never shows.
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let slots = &slots;
                let job = &timed;
                scope.spawn(move || loop {
                    let idx = {
                        let mut own = queues[w].lock().expect("queue poisoned");
                        own.pop_front()
                    };
                    let idx = match idx {
                        Some(i) => i,
                        None => {
                            // Steal: scan victims round-robin from w+1.
                            let mut stolen = None;
                            for v in 1..workers {
                                let victim = (w + v) % workers;
                                let mut q = queues[victim].lock().expect("queue poisoned");
                                if let Some(i) = q.pop_back() {
                                    stolen = Some(i);
                                    break;
                                }
                            }
                            match stolen {
                                Some(i) => i,
                                None => return,
                            }
                        }
                    };
                    let out = job(idx);
                    *slots[idx].lock().expect("slot poisoned") = Some(out);
                });
            }
        });

        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("every job index was claimed and completed")
            })
            .collect()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::available()
    }
}

// ====================================================================
// Parallel fault campaigns
// ====================================================================

/// [`rmt_faults::run_srt_campaign`] with injections fanned across the
/// runner. Identical report to the sequential form for any worker count
/// (each injection draws from its own [`split_seed`]-derived stream, and
/// outcomes are aggregated in index order).
///
/// [`split_seed`]: rmt_stats::rng::split_seed
pub fn par_srt_campaign(
    runner: &Runner,
    opts: &SrtOptions,
    workload: &Workload,
    kind: FaultKind,
    cfg: CampaignConfig,
) -> CampaignReport {
    let outcomes = runner.run(cfg.injections, |i| {
        srt_injection(opts, workload, kind, cfg, i)
    });
    CampaignReport::from_outcomes(kind, outcomes)
}

/// [`rmt_faults::run_base_campaign`] fanned across the runner.
pub fn par_base_campaign(
    runner: &Runner,
    core_cfg: &CoreConfig,
    workload: &Workload,
    kind: FaultKind,
    cfg: CampaignConfig,
) -> CampaignReport {
    let outcomes = runner.run(cfg.injections, |i| {
        base_injection(core_cfg, workload, kind, cfg, i)
    });
    CampaignReport::from_outcomes(kind, outcomes)
}

/// [`rmt_faults::run_crt_campaign`] fanned across the runner.
pub fn par_crt_campaign(
    runner: &Runner,
    opts: &SrtOptions,
    workload: &Workload,
    kind: FaultKind,
    cfg: CampaignConfig,
) -> CampaignReport {
    let outcomes = runner.run(cfg.injections, |i| {
        crt_injection(opts, workload, kind, cfg, i)
    });
    CampaignReport::from_outcomes(kind, outcomes)
}

/// [`rmt_faults::run_lockstep_campaign`] fanned across the runner.
pub fn par_lockstep_campaign(
    runner: &Runner,
    opts: &LockstepOptions,
    workload: &Workload,
    kind: FaultKind,
    cfg: CampaignConfig,
) -> CampaignReport {
    let outcomes = runner.run(cfg.injections, |i| {
        lockstep_injection(opts, workload, kind, cfg, i)
    });
    CampaignReport::from_outcomes(kind, outcomes)
}

/// A full forensic SRT campaign fanned across the runner: one
/// [`FaultForensics`] record per injection, ordered by injection index —
/// bitwise identical at any worker count, like the aggregate campaigns.
pub fn par_srt_forensics(
    runner: &Runner,
    opts: &SrtOptions,
    workload: &Workload,
    kind: FaultKind,
    cfg: CampaignConfig,
) -> Vec<FaultForensics> {
    runner.run(cfg.injections, |i| {
        srt_injection_forensic(opts, workload, kind, cfg, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gathers_by_index_regardless_of_workers() {
        for workers in [1, 2, 3, 8, 17] {
            let r = Runner::new(workers);
            let out = r.run(33, |i| 3 * i + 1);
            assert_eq!(out, (0..33).map(|i| 3 * i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        assert!(Runner::new(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn more_workers_than_jobs() {
        assert_eq!(Runner::new(64).run(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn counts_executed_jobs() {
        let r = Runner::new(2);
        r.run(5, |i| i);
        r.run(7, |i| i);
        assert_eq!(r.jobs_executed(), 12);
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(Runner::new(0).jobs(), 1);
    }

    #[test]
    fn tracks_sim_cycles_and_busy_time() {
        let r = Runner::new(2);
        assert_eq!(r.sim_cycles(), 0);
        r.add_sim_cycles(10);
        r.add_sim_cycles(5);
        assert_eq!(r.sim_cycles(), 15);
        r.run(4, |i| (0..10_000u64).fold(i as u64, u64::wrapping_add));
        assert!(r.busy_seconds() > 0.0, "jobs must accrue busy time");
        assert!(r.sim_rate() > 0.0);
    }

    #[test]
    fn hook_sees_every_completion_and_never_perturbs() {
        let counted = Arc::new(AtomicUsize::new(0));
        let max_total = Arc::new(AtomicUsize::new(0));
        let mut r = Runner::new(3);
        let (c, m) = (Arc::clone(&counted), Arc::clone(&max_total));
        r.set_hook(Some(ProgressSink::new(move |done, total| {
            c.fetch_add(1, Ordering::Relaxed);
            m.fetch_max(total as usize, Ordering::Relaxed);
            assert!(done >= 1 && done <= total);
        })));
        let hooked = r.run(17, |i| i * 2);
        assert_eq!(counted.load(Ordering::Relaxed), 17);
        assert_eq!(max_total.load(Ordering::Relaxed), 17);
        // Identical results with the hook removed.
        r.set_hook(None);
        assert_eq!(hooked, r.run(17, |i| i * 2));
    }

    #[test]
    fn stealing_drains_imbalanced_load() {
        // Jobs whose cost is wildly index-dependent still all complete and
        // land in their slots.
        let r = Runner::new(4);
        let out = r.run(64, |i| {
            if i % 16 == 0 {
                // A "slow" job.
                (0..20_000u64).fold(i as u64, |a, x| a.wrapping_add(x))
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
        assert_eq!(out[63], 63);
    }
}
