//! SMARTS-style sampled runs over the experiment fabric.
//!
//! A sampled run replaces one long detailed interval with a handful of
//! short detailed windows: the workload is fast-forwarded *functionally*
//! (the `rmt-isa` reference interpreter), a draining architectural
//! [`Checkpoint`] is taken before each planned window, and **one** device
//! of the experiment's kind serves every window — at each window entry
//! the machine's architectural state moves to the checkpoint (memory
//! image installed, registers and PC restored) while its caches and
//! predictors stay warm, then the fast-forward gap's event log is
//! replayed into them. Warmth therefore accumulates across the whole run
//! exactly as SMARTS' always-on functional warming intends. Each window
//! runs `plan.warmup` committed instructions of detailed warmup, then
//! measures IPC over `plan.measure` committed instructions; the
//! per-window IPCs aggregate into a mean with a 95% confidence interval
//! (`rmt_stats::mean_ci95`).
//!
//! Checkpoints are kind-independent: a [`CheckpointLadder`] produced by
//! one fast-forward pass re-enters every [`DeviceKind`], so grid figures
//! generate it once per benchmark and share it across columns.
//!
//! Determinism matches the rest of the harness: everything is a pure
//! function of `(kind, benchmarks, seed, scale, plan)`, so sampled
//! figures are bitwise identical at any `--jobs` level and a plan with
//! one window positioned at the start of the measured interval
//! reproduces the full run's cycles exactly (the sampled determinism
//! tests assert both).

use crate::experiment::{DeviceKind, Experiment, SimError, VerifyError};
use rmt_core::device::LogicalThread;
use rmt_isa::Program;
use rmt_sample::{Checkpoint, FastForward, SamplePlan};
use rmt_stats::{mean_ci95, Estimate};
use rmt_verify::Oracle;
use rmt_workloads::Workload;
use std::rc::Rc;

/// The outcome of one sampled run: per-logical-thread IPC estimators
/// plus the work accounting the validation harness reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledResult {
    /// Machine kind.
    pub kind: DeviceKind,
    /// Per-logical-thread IPC estimate over the windows.
    pub ipc: Vec<Estimate>,
    /// Per-logical-thread, per-window measured IPCs (window-major inner
    /// vectors), for paired estimators across kinds.
    pub window_ipc: Vec<Vec<f64>>,
    /// Detailed cycles simulated, summed over windows.
    pub cycles: u64,
    /// Detailed instructions simulated (warmup + measure, all windows,
    /// all logical threads).
    pub detailed_instructions: u64,
    /// Instructions executed by the functional fast-forward interpreters.
    pub fastforward_instructions: u64,
}

/// The kind-independent product of one functional fast-forward pass over
/// an experiment's workloads: the checkpoints every planned window
/// re-enters. Any [`DeviceKind`] with the same `(benchmarks, seed,
/// warmup, measure)` can consume the same ladder, so grid figures
/// generate it once per benchmark and share it across device columns.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointLadder {
    /// `windows[w][t]`: the draining checkpoint thread `t` re-enters for
    /// window `w` (its warm log covers the fast-forward gap since the
    /// previous checkpoint).
    pub windows: Vec<Vec<Checkpoint>>,
    /// The per-thread programs (so consumers skip regenerating the whole
    /// workload — the memory images live in the checkpoints).
    pub programs: Vec<Program>,
    /// Instructions executed by the functional interpreters.
    pub fastforward_instructions: u64,
}

impl Experiment {
    /// Fast-forwards each benchmark once, taking a draining checkpoint
    /// ahead of every window `plan` places in this experiment's measured
    /// region (the detailed warmup precedes the position).
    ///
    /// # Errors
    ///
    /// [`SimError::NoBenchmarks`] if no benchmark was added.
    ///
    /// # Panics
    ///
    /// Panics if functional fast-forward stops early (workload programs
    /// never halt) or a window does not fit the measured interval.
    pub fn sample_checkpoints(&self, plan: &SamplePlan) -> Result<CheckpointLadder, SimError> {
        if self.benchmarks.is_empty() {
            return Err(SimError::NoBenchmarks);
        }
        let positions = plan.positions(self.warmup, self.measure);
        let mut ff_insts = 0u64;
        let mut cps: Vec<Vec<Checkpoint>> = vec![Vec::new(); positions.len()];
        let mut programs = Vec::with_capacity(self.benchmarks.len());
        for w in self
            .benchmarks
            .iter()
            .map(|&b| Workload::generate(b, self.seed))
        {
            let mut ff = FastForward::new(&w.program, w.memory, plan.warm_window);
            for (wi, &pos) in positions.iter().enumerate() {
                let entry = pos.saturating_sub(plan.warmup);
                ff.run_to(entry).unwrap_or_else(|e| {
                    panic!("{}: fast-forward to {entry} stopped: {e:?}", w.benchmark)
                });
                cps[wi].push(ff.take_checkpoint());
            }
            ff_insts += ff.committed();
            programs.push(w.program);
        }
        Ok(CheckpointLadder {
            windows: cps,
            programs,
            fastforward_instructions: ff_insts,
        })
    }

    /// Runs this experiment under `plan` instead of one long detailed
    /// interval: the windows sample the same measured region
    /// `[warmup, warmup + measure)` of committed instructions that
    /// [`Experiment::run`](Experiment::run) measures in full.
    ///
    /// # Errors
    ///
    /// [`SimError::NoBenchmarks`] if no benchmark was added;
    /// [`SimError::Timeout`] if any window exceeds its cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if functional fast-forward stops early (workload programs
    /// never halt) or a window does not fit the measured interval.
    pub fn run_sampled(&self, plan: &SamplePlan) -> Result<SampledResult, SimError> {
        let ladder = self.sample_checkpoints(plan)?;
        self.run_sampled_with(plan, &ladder)
    }

    /// Runs this experiment's detailed windows against a shared
    /// checkpoint ladder (see [`Experiment::sample_checkpoints`]; the
    /// ladder must come from the same `(benchmarks, seed, warmup,
    /// measure)`).
    ///
    /// # Errors
    ///
    /// [`SimError::NoBenchmarks`] if no benchmark was added;
    /// [`SimError::Timeout`] if any window exceeds its cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if the ladder does not cover this experiment's benchmarks
    /// and plan.
    pub fn run_sampled_with(
        &self,
        plan: &SamplePlan,
        ladder: &CheckpointLadder,
    ) -> Result<SampledResult, SimError> {
        match self.run_sampled_inner(plan, ladder, false) {
            Ok((result, _)) => Ok(result),
            Err(VerifyError::Sim(e)) => Err(e),
            Err(VerifyError::Divergence(_)) => unreachable!("no oracle attached"),
        }
    }

    /// Runs this experiment under `plan` with the co-simulation oracle
    /// cross-checking every detailed commit — including across sampled
    /// window re-entries, where the oracle's reference lanes are re-seeded
    /// from the same architectural checkpoints the device restores to.
    /// Returns the sampled result and the number of commits checked.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Sim`] wraps the ordinary [`SimError`]s;
    /// [`VerifyError::Divergence`] reports the first commit that disagrees
    /// with the reference interpreter.
    ///
    /// # Panics
    ///
    /// As [`Experiment::run_sampled`].
    pub fn run_sampled_verified(
        &self,
        plan: &SamplePlan,
    ) -> Result<(SampledResult, u64), VerifyError> {
        let ladder = self.sample_checkpoints(plan).map_err(VerifyError::Sim)?;
        self.run_sampled_inner(plan, &ladder, true)
    }

    fn run_sampled_inner(
        &self,
        plan: &SamplePlan,
        ladder: &CheckpointLadder,
        verify: bool,
    ) -> Result<(SampledResult, u64), VerifyError> {
        if self.benchmarks.is_empty() {
            return Err(VerifyError::Sim(SimError::NoBenchmarks));
        }
        let positions = plan.positions(self.warmup, self.measure);
        let cps = &ladder.windows;
        assert_eq!(cps.len(), positions.len(), "ladder does not match plan");
        let ff_insts = ladder.fastforward_instructions;
        let programs: Vec<Rc<_>> = ladder.programs.iter().map(|p| Rc::new(p.clone())).collect();
        let n = self.benchmarks.len();
        let copies = if self.kind() == DeviceKind::Base2 {
            2
        } else {
            1
        };
        // One machine serves every window (SMARTS-style): between windows
        // only the architectural state moves to the next checkpoint, so
        // caches and predictors accumulate warmth across the whole run
        // instead of restarting cold each window.
        let threads: Vec<LogicalThread> = cps[0]
            .iter()
            .zip(&programs)
            .map(|(cp, p)| LogicalThread::new(p.clone(), cp.memory.clone()))
            .collect();
        let mut device = self.build_device_with(threads).map_err(VerifyError::Sim)?;
        // One oracle lane per hardware logical thread (Base2 copies each
        // get their own), seeded like the device itself.
        let mut oracle = verify.then(|| {
            let programs = &programs;
            let entry = &cps[0];
            let lanes = (0..n)
                .flat_map(|t| {
                    (0..copies).map(move |_| (programs[t].clone(), entry[t].memory.clone()))
                })
                .collect();
            let o = Oracle::new(lanes);
            o.attach(device.as_mut());
            o
        });
        let mut window_ipc: Vec<Vec<f64>> = vec![Vec::with_capacity(positions.len()); n];
        for (wi, cps_w) in cps.iter().enumerate() {
            for (t, cp) in cps_w.iter().enumerate() {
                for c in 0..copies {
                    let logical = t * copies + c;
                    if let Some(o) = oracle.as_mut() {
                        // The reference lane moves to the same checkpoint
                        // the device re-enters (at window 0 this is the
                        // state the device was just built from, so the
                        // reseed is the identity there).
                        o.reseed(logical, cp.memory.clone(), &cp.regs, cp.pc, cp.committed);
                    }
                    if wi > 0 {
                        // Move this copy to the window's checkpoint: new
                        // memory (sphere-crossing queues dropped), then
                        // registers and PC.
                        device.install_image(logical, &cp.memory);
                        device.restore_arch(logical, &cp.regs, cp.pc);
                    } else if cp.committed > 0 {
                        // An entry-state checkpoint (committed 0) is
                        // exactly the fresh device's state; restoring
                        // would only add the restore's one-cycle fetch
                        // redirect, breaking bitwise equality with a
                        // straight-through run for a window at the
                        // interval start.
                        device.restore_arch(logical, &cp.regs, cp.pc);
                    }
                    for &ev in &cp.warm {
                        device.warm(logical, ev);
                    }
                }
            }
            // Per-thread relative windows, exactly as in the full run:
            // thread t's warmup is its distance from checkpoint to
            // position (plan.warmup, except clamped near instruction 0).
            // Commit counts and cycles keep running across restores, so
            // everything is measured as a delta from window entry.
            let entry_cycle = device.cycle();
            let entry_committed: Vec<u64> = (0..n).map(|t| device.committed(t * copies)).collect();
            let budget = plan.window_len() * self.max_cycle_factor + 200_000;
            let mut start_cycle: Vec<Option<u64>> = vec![None; n];
            let mut end_cycle: Vec<Option<u64>> = vec![None; n];
            while end_cycle.iter().any(Option::is_none) {
                device.tick();
                if let Some(o) = oracle.as_mut() {
                    o.observe(device.as_mut())
                        .map_err(VerifyError::Divergence)?;
                }
                if device.cycle() - entry_cycle > budget {
                    return Err(VerifyError::Sim(SimError::Timeout {
                        cycles: device.cycle(),
                    }));
                }
                for t in 0..n {
                    let warm = positions[wi] - cps_w[t].committed;
                    let c = device.committed(t * copies) - entry_committed[t];
                    if start_cycle[t].is_none() && c >= warm {
                        start_cycle[t] = Some(device.cycle());
                    }
                    if start_cycle[t].is_some()
                        && end_cycle[t].is_none()
                        && c >= warm + plan.measure
                    {
                        end_cycle[t] = Some(device.cycle());
                    }
                }
            }
            for t in 0..n {
                let dc = end_cycle[t].expect("closed") - start_cycle[t].expect("opened");
                window_ipc[t].push(if dc == 0 {
                    0.0
                } else {
                    plan.measure as f64 / dc as f64
                });
            }
        }
        let cycles = device.cycle();
        let checked = oracle.map_or(0, |o| o.checked());
        Ok((
            SampledResult {
                kind: self.kind(),
                ipc: window_ipc.iter().map(|w| mean_ci95(w)).collect(),
                window_ipc,
                cycles,
                detailed_instructions: positions.len() as u64 * plan.window_len() * n as u64,
                fastforward_instructions: ff_insts,
            },
            checked,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sample::SampleMode;
    use rmt_workloads::Benchmark;

    fn exp(kind: DeviceKind, b: Benchmark) -> Experiment {
        Experiment::new(kind)
            .benchmark(b)
            .warmup(1_000)
            .measure(6_000)
            .seed(3)
    }

    fn small_plan() -> SamplePlan {
        SamplePlan {
            windows: 3,
            warmup: 300,
            measure: 800,
            warm_window: 1_024,
            mode: SampleMode::Periodic,
        }
    }

    #[test]
    fn sampled_base_and_srt_run() {
        for kind in [DeviceKind::Base, DeviceKind::Srt, DeviceKind::Base2] {
            let r = exp(kind, Benchmark::M88ksim)
                .run_sampled(&small_plan())
                .unwrap();
            assert_eq!(r.ipc.len(), 1);
            assert_eq!(r.window_ipc[0].len(), 3);
            assert!(r.ipc[0].mean > 0.0, "{kind}: no progress");
            assert!(r.cycles > 0);
            assert!(r.detailed_instructions < 6_000);
            assert!(r.fastforward_instructions > 0);
        }
    }

    #[test]
    fn sampled_runs_are_reproducible() {
        let a = exp(DeviceKind::Srt, Benchmark::Go)
            .run_sampled(&small_plan())
            .unwrap();
        let b = exp(DeviceKind::Srt, Benchmark::Go)
            .run_sampled(&small_plan())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_ipc_tracks_full_ipc() {
        let full = exp(DeviceKind::Base, Benchmark::M88ksim).run().unwrap();
        let s = exp(DeviceKind::Base, Benchmark::M88ksim)
            .run_sampled(&small_plan())
            .unwrap();
        let rel = (s.ipc[0].mean - full.ipc(0)).abs() / full.ipc(0);
        assert!(
            rel < 0.25,
            "sampled IPC {} too far from full {} (rel {rel})",
            s.ipc[0].mean,
            full.ipc(0)
        );
    }

    #[test]
    fn json_roundtripped_ladder_gives_bitwise_identical_windows() {
        // Checkpoints are the persistence format: a ladder rebuilt from
        // its JSON encoding must drive every detailed window to the exact
        // same cycles, for every device kind that can re-enter it.
        let plan = small_plan();
        let ladder = exp(DeviceKind::Base, Benchmark::M88ksim)
            .sample_checkpoints(&plan)
            .unwrap();
        let rebuilt = CheckpointLadder {
            windows: ladder
                .windows
                .iter()
                .map(|w| {
                    w.iter()
                        .map(|cp| Checkpoint::decode(&cp.encode()).unwrap())
                        .collect()
                })
                .collect(),
            programs: ladder.programs.clone(),
            fastforward_instructions: ladder.fastforward_instructions,
        };
        for kind in [DeviceKind::Base, DeviceKind::Srt, DeviceKind::Lock0] {
            let direct = exp(kind, Benchmark::M88ksim)
                .run_sampled_with(&plan, &ladder)
                .unwrap();
            let replayed = exp(kind, Benchmark::M88ksim)
                .run_sampled_with(&plan, &rebuilt)
                .unwrap();
            assert_eq!(
                direct, replayed,
                "{kind}: codec round trip changed a window"
            );
        }
    }

    #[test]
    fn sampled_windows_verify_across_reentry() {
        // Multi-window sampled runs re-enter the machine through
        // `install_image`/`restore_arch`; the oracle's reference lanes
        // re-seed from the same checkpoints and must stay commit-for-
        // commit clean through every window.
        for kind in [DeviceKind::Base, DeviceKind::Srt, DeviceKind::Base2] {
            let (r, checked) = exp(kind, Benchmark::M88ksim)
                .run_sampled_verified(&small_plan())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(r.window_ipc[0].len(), 3);
            assert!(
                checked >= 3 * 800,
                "{kind}: only {checked} commits cross-checked"
            );
        }
    }

    #[test]
    fn one_window_verified_run_is_divergence_free_and_bitwise_equal() {
        // A single window coinciding with the full measured interval,
        // with the oracle enabled: zero divergences, and bitwise the same
        // window the unverified run produces (the oracle is an observer —
        // it must not perturb timing).
        for kind in [DeviceKind::Base, DeviceKind::Srt] {
            let plan = SamplePlan {
                windows: 1,
                warmup: 1_000,
                measure: 6_000,
                warm_window: 0,
                mode: SampleMode::Periodic,
            };
            let plain = exp(kind, Benchmark::Ijpeg).run_sampled(&plan).unwrap();
            let (verified, checked) = exp(kind, Benchmark::Ijpeg)
                .run_sampled_verified(&plan)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(plain, verified, "{kind}: oracle perturbed the run");
            assert!(checked >= 7_000, "{kind}: only {checked} checked");
            let full = exp(kind, Benchmark::Ijpeg).run().unwrap();
            assert_eq!(
                verified.ipc[0].mean.to_bits(),
                full.ipc(0).to_bits(),
                "{kind}: verified sampled window != full run"
            );
        }
    }

    #[test]
    fn one_window_at_interval_start_reproduces_the_full_run() {
        // A single window whose warmup and measured portion coincide with
        // the full run's must be *bitwise* the full run: same device,
        // same committed stream, same cycles.
        for kind in [DeviceKind::Base, DeviceKind::Srt] {
            let full = exp(kind, Benchmark::Ijpeg).run().unwrap();
            let plan = SamplePlan {
                windows: 1,
                warmup: 1_000,
                measure: 6_000,
                warm_window: 0,
                mode: SampleMode::Periodic,
            };
            let s = exp(kind, Benchmark::Ijpeg).run_sampled(&plan).unwrap();
            assert_eq!(
                s.ipc[0].mean.to_bits(),
                full.ipc(0).to_bits(),
                "{kind}: sampled window != full run"
            );
            assert_eq!(s.ipc[0].n, 1);
            assert_eq!(s.ipc[0].half_width, 0.0);
        }
    }
}
