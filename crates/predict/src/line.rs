//! The line predictor.
//!
//! The base processor's IBOX is driven by a line predictor that produces a
//! sequence of predicted instruction-cache line indices — two chunk
//! addresses per cycle — and is only *verified* by the slower branch
//! predictor (§3.1). We model it as a direct-mapped table from the current
//! fetch-chunk address to the predicted next fetch-chunk address (a
//! last-outcome predictor with aliasing), which reproduces the paper's
//! observed 14–28% line misprediction rates on irregular control flow.

use rmt_stats::CounterSet;

/// A direct-mapped next-chunk predictor.
///
/// # Examples
///
/// ```
/// use rmt_predict::LinePredictor;
///
/// let mut lp = LinePredictor::new(1024);
/// // Untrained: predicts the fall-through chunk.
/// assert_eq!(lp.predict(0x0, 32), 0x20);
/// lp.train(0x0, 0x100);
/// assert_eq!(lp.predict(0x0, 32), 0x100);
/// ```
#[derive(Debug, Clone)]
pub struct LinePredictor {
    /// `(tag, next_pc)` per entry; `u64::MAX` tag = empty.
    table: Vec<(u64, u64)>,
    stats: CounterSet,
}

impl LinePredictor {
    /// Creates a predictor with `entries` slots (the paper's base processor
    /// has 28K entries in total).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "line predictor needs at least one entry");
        LinePredictor {
            table: vec![(u64::MAX, 0); entries],
            stats: CounterSet::new(),
        }
    }

    fn index(&self, chunk_pc: u64) -> usize {
        // Chunks are 32-byte aligned fetch groups; hash the chunk number.
        let chunk = chunk_pc >> 2;
        let h = chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_right(17);
        (h % self.table.len() as u64) as usize
    }

    /// Predicts the next fetch-chunk address after the chunk at `chunk_pc`
    /// whose sequential size is `chunk_bytes`.
    ///
    /// An untrained or aliased entry falls back to the fall-through address
    /// `chunk_pc + chunk_bytes`.
    pub fn predict(&mut self, chunk_pc: u64, chunk_bytes: u64) -> u64 {
        let idx = self.index(chunk_pc);
        let (tag, next) = self.table[idx];
        self.stats.inc("predictions");
        if tag == chunk_pc {
            next
        } else {
            chunk_pc + chunk_bytes
        }
    }

    /// Trains the entry for `chunk_pc` with the actual next chunk address.
    pub fn train(&mut self, chunk_pc: u64, actual_next: u64) {
        let idx = self.index(chunk_pc);
        if self.table[idx] != (chunk_pc, actual_next) {
            self.stats.inc("retrains");
        }
        self.table[idx] = (chunk_pc, actual_next);
    }

    /// Records a verified misprediction (for the misfetch-rate statistic).
    pub fn record_mispredict(&mut self) {
        self.stats.inc("mispredictions");
    }

    /// Counters: `predictions`, `retrains`, `mispredictions`.
    pub fn stats(&self) -> &CounterSet {
        &self.stats
    }

    /// Fraction of predictions that were later found wrong.
    pub fn misprediction_rate(&self) -> f64 {
        let p = self.stats.get("predictions") as f64;
        if p == 0.0 {
            0.0
        } else {
            self.stats.get("mispredictions") as f64 / p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_predicts_fall_through() {
        let mut lp = LinePredictor::new(64);
        assert_eq!(lp.predict(0x40, 32), 0x60);
    }

    #[test]
    fn trained_entry_predicts_target() {
        let mut lp = LinePredictor::new(64);
        lp.train(0x40, 0x200);
        assert_eq!(lp.predict(0x40, 32), 0x200);
    }

    #[test]
    fn retraining_overwrites() {
        let mut lp = LinePredictor::new(64);
        lp.train(0x40, 0x200);
        lp.train(0x40, 0x300);
        assert_eq!(lp.predict(0x40, 32), 0x300);
        assert_eq!(lp.stats().get("retrains"), 2);
    }

    #[test]
    fn aliasing_mispredicts_fall_through() {
        // 1-entry table: every chunk aliases.
        let mut lp = LinePredictor::new(1);
        lp.train(0x40, 0x200);
        // A different chunk hits the same entry but fails the tag check.
        assert_eq!(lp.predict(0x80, 32), 0xa0);
    }

    #[test]
    fn idempotent_training_counts_once() {
        let mut lp = LinePredictor::new(64);
        lp.train(0x40, 0x200);
        lp.train(0x40, 0x200);
        assert_eq!(lp.stats().get("retrains"), 1);
    }

    #[test]
    fn misprediction_rate_computation() {
        let mut lp = LinePredictor::new(64);
        assert_eq!(lp.misprediction_rate(), 0.0);
        lp.predict(0, 32);
        lp.predict(0, 32);
        lp.record_mispredict();
        assert!((lp.misprediction_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        LinePredictor::new(0);
    }
}
