//! Prediction structures of the base processor's front end and memory
//! system (Table 1):
//!
//! * [`line`] — the line predictor that drives instruction fetch. The base
//!   processor fetches through *line predictions*, not branch predictions;
//!   the branch predictor only verifies them (§3.1). Line-predictor
//!   misprediction rates of 14–28% are what made the paper's branch outcome
//!   queue unusable as proposed and motivated the line prediction queue
//!   (§4.4).
//! * [`branch`] — a 21264-style tournament predictor (local + global with a
//!   chooser), a jump-target table and a per-thread return-address stack.
//! * [`storesets`] — the store-sets memory dependence predictor
//!   (Chrysos & Emer), 4K entries in the base processor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod line;
pub mod storesets;

pub use branch::{BranchPredictor, BranchPredictorConfig, ReturnAddressStack};
pub use line::LinePredictor;
pub use storesets::StoreSets;
