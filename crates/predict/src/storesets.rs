//! Store-sets memory dependence prediction (Chrysos & Emer), the base
//! processor's 4K-entry predictor (Table 1).
//!
//! When a load issues before an older store to the same address and reads a
//! stale value, the pipeline squashes from the load and reports the
//! violation here. The predictor merges the load and store PCs into a
//! *store set*; at rename time, a load whose PC belongs to a set waits for
//! any in-flight older store of the same set, preventing the violation from
//! recurring.

use rmt_stats::CounterSet;

/// Identifier of a store set.
pub type StoreSetId = u32;

/// The store-sets predictor (SSIT only; the LFST role is played by the
/// pipeline's in-flight store scan, which is equivalent at our issue widths).
///
/// # Examples
///
/// ```
/// use rmt_predict::StoreSets;
///
/// let mut ss = StoreSets::new(4096);
/// assert_eq!(ss.set_of(0x40), None);
/// ss.record_violation(0x40, 0x100);
/// assert!(ss.set_of(0x40).is_some());
/// assert_eq!(ss.set_of(0x40), ss.set_of(0x100));
/// ```
#[derive(Debug, Clone)]
pub struct StoreSets {
    ssit: Vec<Option<StoreSetId>>,
    next_id: StoreSetId,
    stats: CounterSet,
}

impl StoreSets {
    /// Creates a predictor with `entries` SSIT slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "store-sets table needs at least one entry");
        StoreSets {
            ssit: vec![None; entries],
            next_id: 0,
            stats: CounterSet::new(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = (pc >> 2).wrapping_mul(0x2545_f491_4f6c_dd1d);
        (h % self.ssit.len() as u64) as usize
    }

    /// The store set of the instruction at `pc`, if assigned.
    pub fn set_of(&self, pc: u64) -> Option<StoreSetId> {
        self.ssit[self.index(pc)]
    }

    /// Records a memory-order violation between the load at `load_pc` and
    /// the store at `store_pc`: both are merged into one store set.
    pub fn record_violation(&mut self, load_pc: u64, store_pc: u64) {
        self.stats.inc("violations");
        let li = self.index(load_pc);
        let si = self.index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let id = self.next_id;
                self.next_id = self.next_id.wrapping_add(1);
                self.ssit[li] = Some(id);
                self.ssit[si] = Some(id);
            }
            (Some(id), None) => self.ssit[si] = Some(id),
            (None, Some(id)) => self.ssit[li] = Some(id),
            (Some(a), Some(b)) => {
                // Merge: adopt the smaller id (deterministic).
                let id = a.min(b);
                self.ssit[li] = Some(id);
                self.ssit[si] = Some(id);
            }
        }
    }

    /// Whether a load at `load_pc` must wait for a store at `store_pc`
    /// according to current training.
    pub fn must_wait(&self, load_pc: u64, store_pc: u64) -> bool {
        match (self.set_of(load_pc), self.set_of(store_pc)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Counters: `violations`.
    pub fn stats(&self) -> &CounterSet {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_predicts_no_dependence() {
        let ss = StoreSets::new(64);
        assert!(!ss.must_wait(0x40, 0x80));
        assert_eq!(ss.set_of(0x40), None);
    }

    #[test]
    fn violation_creates_shared_set() {
        let mut ss = StoreSets::new(64);
        ss.record_violation(0x40, 0x80);
        assert!(ss.must_wait(0x40, 0x80));
        assert_eq!(ss.stats().get("violations"), 1);
    }

    #[test]
    fn unrelated_pcs_do_not_wait() {
        let mut ss = StoreSets::new(4096);
        ss.record_violation(0x40, 0x80);
        assert!(!ss.must_wait(0x40, 0x200));
        assert!(!ss.must_wait(0x999, 0x80));
    }

    #[test]
    fn sets_merge_on_cross_violation() {
        let mut ss = StoreSets::new(4096);
        ss.record_violation(0x40, 0x80); // set A
        ss.record_violation(0x100, 0x140); // set B
        ss.record_violation(0x40, 0x140); // merge A and B
        assert!(ss.must_wait(0x40, 0x140));
        assert_eq!(ss.set_of(0x40), ss.set_of(0x140));
    }

    #[test]
    fn second_store_joins_existing_set() {
        let mut ss = StoreSets::new(4096);
        ss.record_violation(0x40, 0x80);
        ss.record_violation(0x40, 0x200);
        assert!(ss.must_wait(0x40, 0x80));
        assert!(ss.must_wait(0x40, 0x200));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        StoreSets::new(0);
    }
}
