//! Tournament branch prediction, jump-target prediction and the
//! return-address stack.
//!
//! Modelled on the Alpha 21264 family the base processor descends from: a
//! local predictor (per-PC history feeding saturating counters), a global
//! gshare predictor, and a chooser that learns which of the two to trust per
//! branch. The paper's base processor spends 208 Kbits here; our default
//! sizing (4K local, 4K global, 4K chooser 2-bit entries plus a 1K-entry
//! jump table) is the same order of magnitude.

use rmt_stats::CounterSet;

/// Two-bit saturating counter helpers.
fn bump(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

fn predicts_taken(counter: u8) -> bool {
    counter >= 2
}

/// Configuration for [`BranchPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Entries in the local predictor's history and counter tables.
    pub local_entries: usize,
    /// Bits of local history per branch.
    pub local_history_bits: u32,
    /// Entries in the global (gshare) table.
    pub global_entries: usize,
    /// Bits of global history.
    pub global_history_bits: u32,
    /// Entries in the chooser table.
    pub chooser_entries: usize,
    /// Entries in the jump-target table (for `jalr` targets).
    pub jump_entries: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        BranchPredictorConfig {
            local_entries: 4096,
            local_history_bits: 10,
            global_entries: 4096,
            global_history_bits: 12,
            chooser_entries: 4096,
            jump_entries: 1024,
        }
    }
}

/// A 21264-style tournament direction predictor plus jump-target table.
///
/// # Examples
///
/// ```
/// use rmt_predict::BranchPredictor;
///
/// let mut bp = BranchPredictor::default();
/// // Train a strongly taken branch (long enough for the local history to
/// // saturate and the counters behind it to strengthen).
/// for _ in 0..32 {
///     let p = bp.predict_direction(0x40);
///     bp.train_direction(0x40, p, true);
/// }
/// assert!(bp.predict_direction(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchPredictorConfig,
    local_history: Vec<u32>,
    local_counters: Vec<u8>,
    global_counters: Vec<u8>,
    chooser: Vec<u8>,
    global_history: u32,
    jump_targets: Vec<(u64, u64)>,
    stats: CounterSet,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new(BranchPredictorConfig::default())
    }
}

impl BranchPredictor {
    /// Creates a predictor with the given table sizes.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero.
    pub fn new(cfg: BranchPredictorConfig) -> Self {
        assert!(
            cfg.local_entries > 0
                && cfg.global_entries > 0
                && cfg.chooser_entries > 0
                && cfg.jump_entries > 0,
            "all predictor tables need at least one entry"
        );
        BranchPredictor {
            local_history: vec![0; cfg.local_entries],
            local_counters: vec![1; cfg.local_entries],
            global_counters: vec![1; cfg.global_entries],
            chooser: vec![1; cfg.chooser_entries],
            global_history: 0,
            jump_targets: vec![(u64::MAX, 0); cfg.jump_entries],
            cfg,
            stats: CounterSet::new(),
        }
    }

    fn pc_hash(pc: u64) -> u64 {
        (pc >> 2).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 13
    }

    fn local_index(&self, pc: u64) -> usize {
        // Index counters by (pc, local history) as in a two-level predictor.
        let h = self.local_history[(Self::pc_hash(pc) % self.cfg.local_entries as u64) as usize];
        ((Self::pc_hash(pc) ^ h as u64) % self.cfg.local_entries as u64) as usize
    }

    fn global_index(&self, pc: u64) -> usize {
        let mask = (1u32 << self.cfg.global_history_bits) - 1;
        ((Self::pc_hash(pc) ^ (self.global_history & mask) as u64) % self.cfg.global_entries as u64)
            as usize
    }

    fn chooser_index(&self, pc: u64) -> usize {
        (Self::pc_hash(pc) % self.cfg.chooser_entries as u64) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict_direction(&mut self, pc: u64) -> bool {
        self.stats.inc("direction_predictions");
        let local = predicts_taken(self.local_counters[self.local_index(pc)]);
        let global = predicts_taken(self.global_counters[self.global_index(pc)]);
        let use_global = predicts_taken(self.chooser[self.chooser_index(pc)]);
        if use_global {
            global
        } else {
            local
        }
    }

    /// Trains with the actual outcome; `predicted` is what
    /// [`Self::predict_direction`] returned for this instance of the branch.
    pub fn train_direction(&mut self, pc: u64, predicted: bool, taken: bool) {
        if predicted != taken {
            self.stats.inc("direction_mispredictions");
        }
        self.update_direction_tables(pc, taken);
    }

    /// Functionally warms the direction tables with a resolved outcome —
    /// identical table/history updates to [`Self::train_direction`], but no
    /// prediction is scored so the misprediction counters stay untouched.
    pub fn warm_direction(&mut self, pc: u64, taken: bool) {
        self.update_direction_tables(pc, taken);
    }

    fn update_direction_tables(&mut self, pc: u64, taken: bool) {
        let li = self.local_index(pc);
        let gi = self.global_index(pc);
        let local_correct = predicts_taken(self.local_counters[li]) == taken;
        let global_correct = predicts_taken(self.global_counters[gi]) == taken;
        // Chooser learns toward whichever component was right.
        if local_correct != global_correct {
            let ci = self.chooser_index(pc);
            bump(&mut self.chooser[ci], global_correct);
        }
        bump(&mut self.local_counters[li], taken);
        bump(&mut self.global_counters[gi], taken);
        // Update histories.
        let lh_idx = (Self::pc_hash(pc) % self.cfg.local_entries as u64) as usize;
        let lh_mask = (1u32 << self.cfg.local_history_bits) - 1;
        self.local_history[lh_idx] = ((self.local_history[lh_idx] << 1) | taken as u32) & lh_mask;
        self.global_history = (self.global_history << 1) | taken as u32;
    }

    /// Predicts the target of an indirect jump (`jalr`) at `pc`; `None` if
    /// untrained.
    pub fn predict_jump_target(&mut self, pc: u64) -> Option<u64> {
        self.stats.inc("jump_predictions");
        let idx = (Self::pc_hash(pc) % self.cfg.jump_entries as u64) as usize;
        let (tag, target) = self.jump_targets[idx];
        (tag == pc).then_some(target)
    }

    /// Trains the jump-target table.
    pub fn train_jump_target(&mut self, pc: u64, target: u64) {
        let idx = (Self::pc_hash(pc) % self.cfg.jump_entries as u64) as usize;
        if self.jump_targets[idx] != (pc, target) {
            self.stats.inc("jump_retrains");
        }
        self.jump_targets[idx] = (pc, target);
    }

    /// Functionally warms the jump-target table (no retrain counting).
    pub fn warm_jump_target(&mut self, pc: u64, target: u64) {
        let idx = (Self::pc_hash(pc) % self.cfg.jump_entries as u64) as usize;
        self.jump_targets[idx] = (pc, target);
    }

    /// Counters: `direction_predictions`, `direction_mispredictions`,
    /// `jump_predictions`, `jump_retrains`.
    pub fn stats(&self) -> &CounterSet {
        &self.stats
    }

    /// Direction misprediction rate so far.
    pub fn misprediction_rate(&self) -> f64 {
        let p = self.stats.get("direction_predictions") as f64;
        if p == 0.0 {
            0.0
        } else {
            self.stats.get("direction_mispredictions") as f64 / p
        }
    }
}

/// A per-thread return-address stack.
///
/// Pushed by `jal` (calls), popped by `jalr` through the return-address
/// register. Bounded; overflow discards the oldest entry, underflow returns
/// `None` (predict via the jump table instead).
///
/// # Examples
///
/// ```
/// use rmt_predict::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(0x104);
/// assert_eq!(ras.pop(), Some(0x104));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with space for `capacity` return addresses.
    pub fn new(capacity: usize) -> Self {
        ReturnAddressStack {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (discarding the oldest on overflow).
    pub fn push(&mut self, addr: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Clears the stack (on thread squash the speculative RAS is discarded).
    pub fn clear(&mut self) {
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_strongly_biased_branch() {
        let mut bp = BranchPredictor::default();
        for _ in 0..16 {
            let p = bp.predict_direction(0x100);
            bp.train_direction(0x100, p, true);
        }
        assert!(bp.predict_direction(0x100));
        for _ in 0..16 {
            let p = bp.predict_direction(0x200);
            bp.train_direction(0x200, p, false);
        }
        assert!(!bp.predict_direction(0x200));
    }

    #[test]
    fn mispredictions_counted() {
        let mut bp = BranchPredictor::default();
        let p = bp.predict_direction(0x40);
        bp.train_direction(0x40, p, !p);
        assert_eq!(bp.stats().get("direction_mispredictions"), 1);
        assert!(bp.misprediction_rate() > 0.0);
    }

    #[test]
    fn alternating_branch_is_learnable_locally() {
        // Local history should capture a strict T/N/T/N pattern.
        let mut bp = BranchPredictor::default();
        let mut outcome = false;
        // Warm up.
        for _ in 0..200 {
            let p = bp.predict_direction(0x300);
            bp.train_direction(0x300, p, outcome);
            outcome = !outcome;
        }
        // Measure.
        let mut wrong = 0;
        for _ in 0..100 {
            let p = bp.predict_direction(0x300);
            if p != outcome {
                wrong += 1;
            }
            bp.train_direction(0x300, p, outcome);
            outcome = !outcome;
        }
        assert!(wrong < 20, "wrong = {wrong}");
    }

    #[test]
    fn jump_target_roundtrip() {
        let mut bp = BranchPredictor::default();
        assert_eq!(bp.predict_jump_target(0x80), None);
        bp.train_jump_target(0x80, 0x1000);
        assert_eq!(bp.predict_jump_target(0x80), Some(0x1000));
    }

    #[test]
    fn ras_lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(4);
        ras.push(8);
        assert_eq!(ras.pop(), Some(8));
        assert_eq!(ras.pop(), Some(4));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_discards_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_clear() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(1);
        ras.clear();
        assert_eq!(ras.depth(), 0);
    }

    #[test]
    fn zero_capacity_ras_is_inert() {
        let mut ras = ReturnAddressStack::new(0);
        ras.push(1);
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_table_panics() {
        BranchPredictor::new(BranchPredictorConfig {
            local_entries: 0,
            ..Default::default()
        });
    }
}
