//! Benchmark names and their synthesis profiles.

use std::fmt;

/// The 18 SPEC CPU95 benchmarks of the paper's Figure 6, plus nothing else.
///
/// Integer suite: compress, gcc, go, ijpeg, li, m88ksim, perl, vortex.
/// Floating-point suite: applu, apsi (the paper spells it "appsi"),
/// fpppp, hydro2d, mgrid, su2cor, swim, tomcatv, turb3d, wave5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // benchmark names document themselves
pub enum Benchmark {
    Applu,
    Apsi,
    Compress,
    Fpppp,
    Gcc,
    Go,
    Hydro2d,
    Ijpeg,
    Li,
    M88ksim,
    Mgrid,
    Perl,
    Su2cor,
    Swim,
    Tomcatv,
    Turb3d,
    Vortex,
    Wave5,
}

/// All 18 benchmarks in the paper's (alphabetical) Figure 6 order.
pub const ALL_BENCHMARKS: &[Benchmark] = &[
    Benchmark::Applu,
    Benchmark::Apsi,
    Benchmark::Compress,
    Benchmark::Fpppp,
    Benchmark::Gcc,
    Benchmark::Go,
    Benchmark::Hydro2d,
    Benchmark::Ijpeg,
    Benchmark::Li,
    Benchmark::M88ksim,
    Benchmark::Mgrid,
    Benchmark::Perl,
    Benchmark::Su2cor,
    Benchmark::Swim,
    Benchmark::Tomcatv,
    Benchmark::Turb3d,
    Benchmark::Vortex,
    Benchmark::Wave5,
];

impl Benchmark {
    /// The benchmark's lowercase display name (as in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Applu => "applu",
            Benchmark::Apsi => "apsi",
            Benchmark::Compress => "compress",
            Benchmark::Fpppp => "fpppp",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Hydro2d => "hydro2d",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Mgrid => "mgrid",
            Benchmark::Perl => "perl",
            Benchmark::Su2cor => "su2cor",
            Benchmark::Swim => "swim",
            Benchmark::Tomcatv => "tomcatv",
            Benchmark::Turb3d => "turb3d",
            Benchmark::Vortex => "vortex",
            Benchmark::Wave5 => "wave5",
        }
    }

    /// Whether this is a SPECfp95 benchmark.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            Benchmark::Applu
                | Benchmark::Apsi
                | Benchmark::Fpppp
                | Benchmark::Hydro2d
                | Benchmark::Mgrid
                | Benchmark::Su2cor
                | Benchmark::Swim
                | Benchmark::Tomcatv
                | Benchmark::Turb3d
                | Benchmark::Wave5
        )
    }

    /// A stable small integer id (used to derive per-benchmark RNG streams).
    pub fn id(self) -> u64 {
        ALL_BENCHMARKS
            .iter()
            .position(|b| *b == self)
            .expect("benchmark in table") as u64
    }

    /// The synthesis profile for this benchmark.
    pub fn profile(self) -> Profile {
        use Benchmark::*;
        // Kernel weights: (stream, stencil, pointer_chase, int_compute,
        //                  hash_update, branchy, calls)
        match self {
            // --- SPECint95 ---
            Gcc => Profile {
                kernel_weights: [0.5, 0.0, 1.5, 1.5, 0.5, 2.5, 2.0],
                working_set: 96 * 1024,
                branch_bias: 0.85,
                code_kernels: 40,
                fp: false,
                unroll: 3,
            },
            Go => Profile {
                kernel_weights: [0.3, 0.0, 1.0, 2.0, 0.3, 3.5, 1.5],
                working_set: 64 * 1024,
                branch_bias: 0.70,
                code_kernels: 36,
                fp: false,
                unroll: 2,
            },
            Compress => Profile {
                kernel_weights: [0.5, 0.0, 0.8, 2.0, 3.0, 1.2, 0.3],
                working_set: 256 * 1024,
                branch_bias: 0.80,
                code_kernels: 10,
                fp: false,
                unroll: 3,
            },
            Ijpeg => Profile {
                kernel_weights: [1.5, 1.0, 0.2, 3.5, 0.5, 0.6, 0.4],
                working_set: 96 * 1024,
                branch_bias: 0.92,
                code_kernels: 14,
                fp: false,
                unroll: 6,
            },
            Li => Profile {
                kernel_weights: [0.2, 0.0, 2.5, 1.0, 0.3, 1.0, 2.5],
                working_set: 32 * 1024,
                branch_bias: 0.85,
                code_kernels: 20,
                fp: false,
                unroll: 2,
            },
            M88ksim => Profile {
                kernel_weights: [0.5, 0.0, 0.6, 2.5, 0.4, 1.2, 1.2],
                working_set: 32 * 1024,
                branch_bias: 0.90,
                code_kernels: 16,
                fp: false,
                unroll: 4,
            },
            Perl => Profile {
                kernel_weights: [0.3, 0.0, 2.0, 1.2, 0.8, 1.8, 2.2],
                working_set: 96 * 1024,
                branch_bias: 0.82,
                code_kernels: 28,
                fp: false,
                unroll: 2,
            },
            Vortex => Profile {
                kernel_weights: [0.8, 0.0, 2.2, 1.0, 1.0, 1.0, 1.8],
                working_set: 192 * 1024,
                branch_bias: 0.88,
                code_kernels: 30,
                fp: false,
                unroll: 3,
            },
            // --- SPECfp95 ---
            Applu => Profile {
                kernel_weights: [2.5, 2.0, 0.0, 0.6, 0.0, 0.2, 0.2],
                working_set: 1024 * 1024,
                branch_bias: 0.97,
                code_kernels: 10,
                fp: true,
                unroll: 6,
            },
            Apsi => Profile {
                kernel_weights: [2.0, 1.5, 0.1, 1.0, 0.0, 0.4, 0.4],
                working_set: 512 * 1024,
                branch_bias: 0.95,
                code_kernels: 12,
                fp: true,
                unroll: 5,
            },
            Fpppp => Profile {
                kernel_weights: [0.35, 0.15, 0.0, 1.8, 0.0, 0.1, 0.2],
                working_set: 48 * 1024,
                branch_bias: 0.985,
                code_kernels: 8,
                fp: true,
                unroll: 5,
            },
            Hydro2d => Profile {
                kernel_weights: [2.2, 2.2, 0.0, 0.5, 0.0, 0.3, 0.2],
                working_set: 768 * 1024,
                branch_bias: 0.96,
                code_kernels: 10,
                fp: true,
                unroll: 6,
            },
            Mgrid => Profile {
                kernel_weights: [1.5, 3.5, 0.0, 0.3, 0.0, 0.1, 0.1],
                working_set: 1536 * 1024,
                branch_bias: 0.985,
                code_kernels: 8,
                fp: true,
                unroll: 6,
            },
            Su2cor => Profile {
                kernel_weights: [2.5, 1.2, 0.2, 0.8, 0.0, 0.3, 0.3],
                working_set: 1024 * 1024,
                branch_bias: 0.95,
                code_kernels: 12,
                fp: true,
                unroll: 5,
            },
            Swim => Profile {
                kernel_weights: [3.5, 1.5, 0.0, 0.2, 0.0, 0.1, 0.1],
                working_set: 1536 * 1024,
                branch_bias: 0.99,
                code_kernels: 6,
                fp: true,
                unroll: 7,
            },
            Tomcatv => Profile {
                kernel_weights: [3.0, 2.0, 0.0, 0.3, 0.0, 0.1, 0.1],
                working_set: 1280 * 1024,
                branch_bias: 0.985,
                code_kernels: 6,
                fp: true,
                unroll: 6,
            },
            Turb3d => Profile {
                kernel_weights: [2.0, 1.8, 0.0, 0.8, 0.0, 0.3, 0.4],
                working_set: 512 * 1024,
                branch_bias: 0.94,
                code_kernels: 12,
                fp: true,
                unroll: 5,
            },
            Wave5 => Profile {
                kernel_weights: [2.5, 1.5, 0.2, 0.6, 0.0, 0.3, 0.2],
                working_set: 768 * 1024,
                branch_bias: 0.95,
                code_kernels: 10,
                fp: true,
                unroll: 5,
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters steering program synthesis for one benchmark.
///
/// The seven `kernel_weights` entries weight the generator's kernel types:
/// `[stream, stencil, pointer_chase, int_compute, hash_update, branchy,
/// calls]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Relative weights of the seven kernel types.
    pub kernel_weights: [f64; 7],
    /// Bytes of data the program touches (drives cache behaviour).
    pub working_set: u64,
    /// Probability that a data-dependent branch goes its majority way
    /// (drives branch/line misprediction rates; lower = less predictable).
    pub branch_bias: f64,
    /// Number of kernels instantiated (drives code footprint and
    /// I-cache/line-predictor pressure).
    pub code_kernels: usize,
    /// Whether arithmetic kernels use FP stand-in opcodes.
    pub fp: bool,
    /// Loop unrolling factor inside kernels (drives ILP).
    pub unroll: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_benchmarks() {
        assert_eq!(ALL_BENCHMARKS.len(), 18);
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let mut names: Vec<&str> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn ids_are_dense() {
        for (i, b) in ALL_BENCHMARKS.iter().enumerate() {
            assert_eq!(b.id(), i as u64);
        }
    }

    #[test]
    fn fp_split_matches_spec95() {
        let fp_count = ALL_BENCHMARKS.iter().filter(|b| b.is_fp()).count();
        assert_eq!(fp_count, 10);
        assert!(Benchmark::Swim.is_fp());
        assert!(!Benchmark::Gcc.is_fp());
    }

    #[test]
    fn profiles_are_sane() {
        for &b in ALL_BENCHMARKS {
            let p = b.profile();
            assert!(p.working_set >= 32 * 1024, "{b}");
            assert!((0.5..=1.0).contains(&p.branch_bias), "{b}");
            assert!(p.code_kernels >= 4, "{b}");
            assert!(p.unroll >= 1, "{b}");
            assert!(p.kernel_weights.iter().sum::<f64>() > 0.0, "{b}");
            assert_eq!(p.fp, b.is_fp(), "{b}");
        }
    }

    #[test]
    fn go_is_least_predictable() {
        let go = Benchmark::Go.profile().branch_bias;
        for &b in ALL_BENCHMARKS {
            assert!(go <= b.profile().branch_bias, "{b}");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::M88ksim.to_string(), "m88ksim");
    }
}
