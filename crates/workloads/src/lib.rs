//! Synthetic SPEC CPU95-like workloads.
//!
//! The paper evaluates on the 18 SPEC CPU95 benchmarks. Those binaries (and
//! an Alpha toolchain) are unavailable, so this crate synthesizes — per
//! benchmark name — a deterministic program in the `rmt-isa` ISA whose
//! *rates* (branch density and predictability, load/store density, FP
//! fraction, working-set size, ILP, call behaviour) land in the region the
//! real benchmark occupies. RMT's performance effects are driven by exactly
//! these rates (DESIGN.md §1), so the synthetic suite exercises the same
//! mechanisms: store-queue pressure, line-predictor mispredictions, cache
//! misses that the trailing thread can skip, and so on.
//!
//! * [`profile`] — the [`Benchmark`] enum and per-benchmark parameters.
//! * [`generate`] — the program generator (kernels + main loop).
//! * [`mix`] — the multiprogram combinations used by the two- and
//!   four-logical-thread experiments.
//!
//! # Examples
//!
//! ```
//! use rmt_workloads::{Benchmark, Workload};
//!
//! let w = Workload::generate(Benchmark::Gcc, 1);
//! assert!(w.program.len() > 100);
//! // Deterministic: same benchmark + seed -> identical program.
//! let w2 = Workload::generate(Benchmark::Gcc, 1);
//! assert_eq!(w.program, w2.program);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod mix;
pub mod profile;

pub use generate::Workload;
pub use profile::{Benchmark, Profile};
