//! Multiprogram mixes for the multithreaded experiments.
//!
//! The paper combines benchmarks for its multithreaded runs (§6.2):
//!
//! * two-program runs: every pair of {gcc, go, fpppp, swim} — six pairs;
//! * four-program runs: combinations of four of {gcc, go, ijpeg, fpppp,
//!   swim} — the paper reports 15 combinations. Four *distinct* choices
//!   from five benchmarks yield only C(5,4) = 5, so the paper necessarily
//!   allowed repeats; we reproduce 15 as the 5 distinct four-of-five
//!   combinations plus the C(5,2) = 10 doubled pairs (a, a, b, b). This is
//!   recorded as a substitution in EXPERIMENTS.md.

use crate::profile::Benchmark;

/// The four benchmarks the paper pairs for two-program runs.
pub const PAIR_POOL: [Benchmark; 4] = [
    Benchmark::Gcc,
    Benchmark::Go,
    Benchmark::Fpppp,
    Benchmark::Swim,
];

/// The five benchmarks the paper combines for four-program runs.
pub const QUAD_POOL: [Benchmark; 5] = [
    Benchmark::Gcc,
    Benchmark::Go,
    Benchmark::Ijpeg,
    Benchmark::Fpppp,
    Benchmark::Swim,
];

/// The six two-program pairs: every unordered pair from [`PAIR_POOL`].
///
/// # Examples
///
/// ```
/// assert_eq!(rmt_workloads::mix::two_program_mixes().len(), 6);
/// ```
pub fn two_program_mixes() -> Vec<[Benchmark; 2]> {
    let mut out = Vec::new();
    for (i, &a) in PAIR_POOL.iter().enumerate() {
        for &b in &PAIR_POOL[i + 1..] {
            out.push([a, b]);
        }
    }
    out
}

/// The fifteen four-program mixes: the 5 distinct 4-of-5 combinations from
/// [`QUAD_POOL`] plus the 10 doubled pairs `(a, a, b, b)`.
///
/// # Examples
///
/// ```
/// assert_eq!(rmt_workloads::mix::four_program_mixes().len(), 15);
/// ```
pub fn four_program_mixes() -> Vec<[Benchmark; 4]> {
    let mut out = Vec::new();
    // Distinct four-of-five: drop each element once.
    for skip in 0..QUAD_POOL.len() {
        let mut combo = Vec::with_capacity(4);
        for (i, &b) in QUAD_POOL.iter().enumerate() {
            if i != skip {
                combo.push(b);
            }
        }
        out.push([combo[0], combo[1], combo[2], combo[3]]);
    }
    // Doubled pairs.
    for (i, &a) in QUAD_POOL.iter().enumerate() {
        for &b in &QUAD_POOL[i + 1..] {
            out.push([a, a, b, b]);
        }
    }
    out
}

/// Human-readable name of a mix, e.g. `gcc+go`.
pub fn mix_name(benchmarks: &[Benchmark]) -> String {
    benchmarks
        .iter()
        .map(|b| b.name())
        .collect::<Vec<_>>()
        .join("+")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_pairs() {
        let pairs = two_program_mixes();
        assert_eq!(pairs.len(), 6);
        // All distinct.
        for (i, a) in pairs.iter().enumerate() {
            for b in &pairs[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Each pair has two different benchmarks.
        for p in &pairs {
            assert_ne!(p[0], p[1]);
        }
    }

    #[test]
    fn fifteen_quads() {
        let quads = four_program_mixes();
        assert_eq!(quads.len(), 15);
        for (i, a) in quads.iter().enumerate() {
            for b in &quads[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn quads_use_only_the_pool() {
        for q in four_program_mixes() {
            for b in q {
                assert!(QUAD_POOL.contains(&b));
            }
        }
    }

    #[test]
    fn names_join_with_plus() {
        assert_eq!(
            mix_name(&[Benchmark::Gcc, Benchmark::Go]),
            "gcc+go".to_string()
        );
    }
}
