//! The synthetic program generator.
//!
//! Produces, per `(benchmark, seed)`, a deterministic [`Workload`]: a
//! program (an endless main loop calling a benchmark-specific mix of
//! kernels) plus an initialized memory image. The seven kernel types map to
//! behaviours that dominate the corresponding real benchmarks:
//!
//! | kernel          | behaviour exercised                                 |
//! |-----------------|-----------------------------------------------------|
//! | `stream`        | unit-stride loads/stores over the working set       |
//! | `stencil`       | multi-load FP combine, store (grid codes)           |
//! | `pointer_chase` | dependent loads, data-dependent branches            |
//! | `int_compute`   | ALU chains with configurable ILP                    |
//! | `hash_update`   | read-modify-write to pseudo-random slots, byte      |
//! |                 | stores that partially overlap later word loads      |
//! | `branchy`       | data-dependent branches with profile-set bias       |
//! | `calls`         | `jal`/`jalr` call trees (return-address stack)      |
//!
//! Register conventions: `r60` working-set base, `r61` working-set byte
//! mask, `r56`–`r59` persistent cursors, `r62` secondary link register,
//! `r63` (`Reg::RA`) primary link register. Kernels use disjoint scratch
//! register windows in `r1..r48` so renaming pressure resembles compiled
//! code.

use crate::profile::{Benchmark, Profile};
use rmt_isa::inst::{Inst, Reg};
use rmt_isa::mem_image::MemImage;
use rmt_isa::program::{Program, ProgramBuilder};
use rmt_stats::Xoshiro256;

/// Base virtual address of the data working set.
pub const DATA_BASE: u64 = 1 << 20;

const BASE_REG: Reg = Reg::new(60);
const MASK_REG: Reg = Reg::new(61);
const LINK2: Reg = Reg::new(62);
const CURSOR: Reg = Reg::new(56);
const CHASE: Reg = Reg::new(57);
const HASH: Reg = Reg::new(58);
const RING_MASK: Reg = Reg::new(59);
const RING_BASE: Reg = Reg::new(55);

/// Largest power of two at most `x` (x >= 1).
fn pow2_floor(x: u64) -> u64 {
    1 << (63 - x.leading_zeros())
}

/// Bytes of the data region (a power of two, half the working set rounded
/// down); the pointer-chase ring occupies an equal region right above it.
fn data_region_bytes(working_set: u64) -> u64 {
    pow2_floor(working_set / 2)
}

/// A generated program plus its initial memory image.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this models.
    pub benchmark: Benchmark,
    /// The program (endless main loop; never halts).
    pub program: Program,
    /// Initial architectural memory.
    pub memory: MemImage,
}

impl Workload {
    /// Generates the workload for `benchmark` with the given `seed`.
    ///
    /// Deterministic: identical inputs produce identical outputs.
    pub fn generate(benchmark: Benchmark, seed: u64) -> Self {
        let profile = benchmark.profile();
        let mut rng = Xoshiro256::seed_from(seed ^ benchmark.id().wrapping_mul(0x9e37_79b9));
        let mut gen = Generator::new(&profile, &mut rng);
        let program = gen.build_program();
        let memory = build_memory(&profile, benchmark, seed);
        Workload {
            benchmark,
            program,
            memory,
        }
    }
}

/// Initializes the working-set region: a data half with parity-biased
/// values (branch predictability knob) and a pointer-chase ring.
fn build_memory(profile: &Profile, benchmark: Benchmark, seed: u64) -> MemImage {
    let mut rng = Xoshiro256::seed_from(seed ^ 0xda7a ^ benchmark.id());
    let mut mem = MemImage::new();
    let data_bytes = data_region_bytes(profile.working_set);
    let data_slots = data_bytes / 8;
    // Data region: values whose low bit is biased toward 0 with probability
    // `branch_bias` — `branchy` kernels branch on that bit.
    for i in 0..data_slots {
        let mut v = rng.next_u64();
        if rng.chance(profile.branch_bias) {
            v &= !1;
        } else {
            v |= 1;
        }
        mem.write_u64(DATA_BASE + i * 8, v);
    }
    // Chase ring: a single permutation cycle (Sattolo's algorithm) over the
    // ring region above the data region, stored as *relative* slot indices
    // so the chase kernel can mask every loaded index back in-bounds.
    let n = data_slots.max(2);
    let ring_base = DATA_BASE + data_bytes;
    let mut perm: Vec<u64> = (0..n).collect();
    let mut i = n as usize - 1;
    while i > 0 {
        let j = rng.below(i as u64) as usize;
        perm.swap(i, j);
        i -= 1;
    }
    // next[perm[k]] = perm[k+1] forms one cycle.
    for k in 0..n as usize {
        let from = perm[k];
        let to = perm[(k + 1) % n as usize];
        mem.write_u64(ring_base + from * 8, to);
    }
    mem
}

struct Generator<'a> {
    profile: &'a Profile,
    rng: &'a mut Xoshiro256,
    b: ProgramBuilder,
    label_counter: usize,
    /// Kernel index currently being generated (for scratch windows).
    kernel_idx: usize,
}

impl<'a> Generator<'a> {
    fn new(profile: &'a Profile, rng: &'a mut Xoshiro256) -> Self {
        Generator {
            profile,
            rng,
            b: ProgramBuilder::new(),
            label_counter: 0,
            kernel_idx: 0,
        }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("{stem}_{}", self.label_counter)
    }

    /// Scratch register window for the current kernel: six registers.
    fn scratch(&self, i: usize) -> Reg {
        let base = 1 + ((self.kernel_idx * 7) % 42);
        Reg::new((base + i) as u8 % 48 + 1)
    }

    /// Emits `rd = constant` using lui/ori (constants up to 32 bits).
    fn emit_const(&mut self, rd: Reg, value: u64) {
        assert!(value < (1 << 32), "constants must fit in 32 bits");
        let hi = (value >> 16) as i64;
        let lo = (value & 0xffff) as i64;
        if hi != 0 {
            self.b.push(Inst::lui(rd, hi));
            if lo != 0 {
                self.b.push(Inst::ori(rd, rd, lo));
            }
        } else {
            self.b.push(Inst::addi(rd, Reg::ZERO, lo));
        }
    }

    /// Computes a working-set-relative pointer into `rd`:
    /// `rd = BASE + ((seed_reg + static_off) & mask & ~7)`.
    fn emit_ws_pointer(&mut self, rd: Reg, seed_reg: Reg, static_off: u64) {
        self.b
            .push(Inst::addi(rd, seed_reg, (static_off & 0xffff) as i64));
        self.b.push(Inst::and(rd, rd, MASK_REG));
        self.b.push(Inst::andi(rd, rd, -8));
        self.b.push(Inst::add(rd, rd, BASE_REG));
    }

    /// A cheap 1-cycle integer op (reductions and induction updates that
    /// must not serialize on long-latency units).
    fn emit_arith_fast(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        let inst = match self.rng.below(3) {
            0 => Inst::add(rd, rs1, rs2),
            1 => Inst::xor(rd, rs1, rs2),
            _ => Inst::sub(rd, rs1, rs2),
        };
        self.b.push(inst);
    }

    /// An arithmetic op appropriate for the profile (FP benchmarks use FP
    /// stand-ins mixed with the integer address arithmetic real FP code
    /// carries; integer benchmarks mix add/mul/logic).
    fn emit_arith(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        if self.profile.fp {
            let inst = match self.rng.below(6) {
                0 => Inst::fadd(rd, rs1, rs2),
                1 => Inst::fsub(rd, rs1, rs2),
                2 => Inst::fmul(rd, rs1, rs2),
                3 => Inst::fadd(rd, rs1, rs2),
                // Real FP code is ~1/3 integer (addressing, induction).
                4 => Inst::add(rd, rs1, rs2),
                _ => Inst::xor(rd, rs1, rs2),
            };
            self.b.push(inst);
        } else {
            let inst = match self.rng.below(8) {
                0 | 1 => Inst::add(rd, rs1, rs2),
                2 => Inst::sub(rd, rs1, rs2),
                3 => Inst::xor(rd, rs1, rs2),
                4 => Inst::and(rd, rs1, rs2),
                5 => Inst::or(rd, rs1, rs2),
                6 => Inst::mul(rd, rs1, rs2),
                _ => Inst::add(rd, rs1, rs2),
            };
            self.b.push(inst);
        }
    }

    fn build_program(&mut self) -> Program {
        // --- entry: set up globals ---
        let data_bytes = data_region_bytes(self.profile.working_set);
        self.emit_const(BASE_REG, DATA_BASE);
        self.emit_const(MASK_REG, data_bytes - 1);
        self.emit_const(RING_BASE, DATA_BASE + data_bytes);
        self.emit_const(RING_MASK, data_bytes / 8 - 1);
        self.b.push(Inst::addi(CURSOR, Reg::ZERO, 0));
        self.b.push(Inst::addi(CHASE, Reg::ZERO, 0)); // relative ring slot
        self.emit_const(HASH, 0x1234_5678);

        // --- choose kernel types up front (so we can emit bodies after the
        //     main loop that calls them) ---
        let n = self.profile.code_kernels;
        let kinds: Vec<usize> = (0..n)
            .map(|_| self.rng.pick_weighted(&self.profile.kernel_weights))
            .collect();

        // --- main loop ---
        self.b.label("main_loop");
        // Advance the streaming cursor so the data region is swept in about
        // two dozen main-loop iterations: the first pass is cold, after
        // which the region lives in whatever cache level fits it — the
        // steady-state reuse pattern of a real benchmark.
        let stride = ((data_bytes / 24).max(1032) & !7) as i64;
        self.b.push(Inst::addi(CURSOR, CURSOR, stride.min(32767)));
        for i in 0..n {
            self.b
                .push_branch(Inst::jal(Reg::RA, 0), format!("kernel_{i}"));
        }
        self.b.push_branch(Inst::j(0), "main_loop");

        // --- kernel bodies ---
        for (i, &kind) in kinds.iter().enumerate() {
            self.kernel_idx = i;
            self.b.label(format!("kernel_{i}"));
            match kind {
                0 => self.kernel_stream(),
                1 => self.kernel_stencil(),
                2 => self.kernel_pointer_chase(),
                3 => self.kernel_int_compute(),
                4 => self.kernel_hash_update(),
                5 => self.kernel_branchy(),
                _ => self.kernel_calls(i),
            }
            // Occasionally end a kernel with a memory barrier: this is the
            // §4.4.2 deadlock case the LPQ chunk-termination rule exists for.
            let membar_p = if self.profile.fp { 0.02 } else { 0.08 };
            if self.rng.chance(membar_p) {
                self.b.push(Inst::membar());
            }
            self.b.push(Inst::jalr(Reg::ZERO, Reg::RA));
        }
        std::mem::take(&mut self.b)
            .build()
            .expect("generated labels are consistent")
    }

    /// Unit-stride sweep: load, compute independently per element, store,
    /// with a cheap integer reduction so values stay live. Elements are
    /// independent, so an out-of-order machine extracts the loop's full
    /// memory-level and instruction-level parallelism.
    fn kernel_stream(&mut self) {
        let p = self.scratch(0);
        let i = self.scratch(1);
        let nreg = self.scratch(2);
        let acc = self.scratch(3);
        let t = self.scratch(4);
        let t2 = self.scratch(5);
        let trip = self.rng.range(8, 16) as i64;
        let off = self.rng.below(1 << 15);
        self.emit_ws_pointer(p, CURSOR, off);
        self.b.push(Inst::addi(i, Reg::ZERO, 0));
        self.b.push(Inst::addi(nreg, Reg::ZERO, trip));
        let loop_l = self.fresh_label("stream");
        self.b.label(loop_l.clone());
        for u in 0..self.profile.unroll {
            self.b.push(Inst::lw(t, p, (u * 8) as i64));
            // Independent per-element computation (renaming breaks the
            // false reuse of t/t2 across unroll lanes).
            self.emit_arith(t2, t, i);
            self.b.push(Inst::sw(t2, p, (u * 8) as i64));
            // 1-cycle integer reduction keeps a live output without a
            // long-latency serial chain.
            self.b.push(Inst::add(acc, acc, t));
        }
        self.b
            .push(Inst::addi(p, p, (self.profile.unroll * 8) as i64));
        self.b.push(Inst::addi(i, i, 1));
        self.b.push_branch(Inst::blt(i, nreg, 0), loop_l);
    }

    /// Three-point Jacobi stencil: load in[i-1], in[i], in[i+1]; combine;
    /// store out[i] into a *separate* region (as real grid codes do), so
    /// elements are independent and the sweep pipelines.
    fn kernel_stencil(&mut self) {
        let p = self.scratch(0);
        let q = self.scratch(1);
        let i = self.scratch(2);
        let (a, b_, c) = (self.scratch(3), self.scratch(4), self.scratch(5));
        let data_bytes = data_region_bytes(self.profile.working_set);
        let trip = self.rng.range(6, 12) as i64;
        let off = self.rng.below(1 << 15) + 8;
        self.emit_ws_pointer(p, CURSOR, off);
        // Keep p-8 inside the working set even when the mask wraps to zero.
        self.b.push(Inst::addi(p, p, 8));
        // Output array: the input offset shifted by half the data region.
        self.emit_ws_pointer(q, CURSOR, off ^ (data_bytes / 2));
        self.b.push(Inst::addi(q, q, 8));
        // Countdown trip counter (saves a register for the stencil values).
        self.b.push(Inst::addi(i, Reg::ZERO, trip));
        let loop_l = self.fresh_label("stencil");
        self.b.label(loop_l.clone());
        for u in 0..self.profile.unroll {
            let base = (u * 8) as i64;
            self.b.push(Inst::lw(a, p, base - 8));
            self.b.push(Inst::lw(b_, p, base));
            self.b.push(Inst::lw(c, p, base + 8));
            self.emit_arith(a, a, b_);
            self.emit_arith(a, a, c);
            self.b.push(Inst::sw(a, q, base));
        }
        self.b
            .push(Inst::addi(p, p, (self.profile.unroll * 8) as i64));
        self.b
            .push(Inst::addi(q, q, (self.profile.unroll * 8) as i64));
        self.b.push(Inst::addi(i, i, -1));
        self.b.push_branch(Inst::bne(i, Reg::ZERO, 0), loop_l);
    }

    /// Dependent-load chain through the permutation ring, with a
    /// data-dependent branch on each visited slot.
    fn kernel_pointer_chase(&mut self) {
        let addr = self.scratch(0);
        let i = self.scratch(1);
        let nreg = self.scratch(2);
        let t = self.scratch(3);
        let trip = self.rng.range(4, 10) as i64;
        self.b.push(Inst::addi(i, Reg::ZERO, 0));
        self.b.push(Inst::addi(nreg, Reg::ZERO, trip));
        let loop_l = self.fresh_label("chase");
        let skip_l = self.fresh_label("chase_skip");
        self.b.label(loop_l.clone());
        // Sanitize the (possibly hash-corrupted) index, then follow the ring:
        // addr = RING_BASE + (CHASE & RING_MASK) * 8 ; CHASE = mem[addr]
        self.b.push(Inst::and(CHASE, CHASE, RING_MASK));
        self.b.push(Inst::slli(addr, CHASE, 3));
        self.b.push(Inst::add(addr, addr, RING_BASE));
        self.b.push(Inst::lw(CHASE, addr, 0));
        // Data-dependent branch on the low bit of the visited index.
        self.b.push(Inst::andi(t, CHASE, 1));
        self.b
            .push_branch(Inst::beq(t, Reg::ZERO, 0), skip_l.clone());
        self.emit_arith(t, t, CHASE);
        self.emit_arith(t, t, i);
        self.b.label(skip_l);
        self.b.push(Inst::addi(i, i, 1));
        self.b.push_branch(Inst::blt(i, nreg, 0), loop_l);
    }

    /// ALU work organized as many short independent chains: each group
    /// seeds a fresh value, transforms it a few steps, and folds it into an
    /// accumulator with a 1-cycle op. Register renaming makes the groups
    /// independent even though they reuse architectural registers, so an
    /// out-of-order window extracts ILP bounded by the functional units,
    /// as in wide-basic-block codes like fpppp.
    fn kernel_int_compute(&mut self) {
        let groups = (2 * self.profile.unroll).clamp(4, 12);
        let depth = self.rng.range(2, 4) as usize;
        let aux = self.scratch(5);
        let acc = self.scratch(4);
        self.b.push(Inst::addi(aux, CURSOR, 17));
        self.b.push(Inst::addi(acc, CURSOR, 1));
        for g in 0..groups {
            let t = self.scratch(g % 4);
            self.b.push(Inst::addi(t, CURSOR, g as i64 + 3));
            for _ in 0..depth {
                self.emit_arith(t, t, aux);
            }
            self.emit_arith_fast(acc, acc, t);
        }
        let p = self.scratch(3);
        self.emit_ws_pointer(p, CURSOR, 24);
        self.b.push(Inst::sw(acc, p, 0));
    }

    /// Read-modify-write to pseudo-random slots; includes the byte-store /
    /// word-load partial-forwarding pair (§4.4.2).
    fn kernel_hash_update(&mut self) {
        let p = self.scratch(0);
        let t = self.scratch(1);
        let k = self.scratch(2);
        // HASH = HASH * 0x6d2b + 0x3c6ef35f (fits the 32-bit const limit).
        self.emit_const(k, 0x6d2b);
        self.b.push(Inst::mul(HASH, HASH, k));
        self.emit_const(t, 0x3c6e_f35f);
        self.b.push(Inst::add(HASH, HASH, t));
        // p = BASE + (HASH & mask & ~7)
        self.b.push(Inst::and(p, HASH, MASK_REG));
        self.b.push(Inst::andi(p, p, -8));
        self.b.push(Inst::add(p, p, BASE_REG));
        self.b.push(Inst::lw(t, p, 0));
        self.emit_arith(t, t, HASH);
        self.b.push(Inst::sw(t, p, 0));
        if self.kernel_idx.is_multiple_of(3) {
            // Byte store followed by a word load of the same location: the
            // load needs partial forwarding, which the base processor
            // resolves by flushing the store (and SRT must chunk-terminate).
            self.b.push(Inst::sb(t, p, 0));
            self.b.push(Inst::lw(t, p, 0));
            self.b.push(Inst::sw(t, p, 8));
        }
    }

    /// Dense data-dependent branching with profile-set predictability.
    fn kernel_branchy(&mut self) {
        let p = self.scratch(0);
        let v = self.scratch(1);
        let t = self.scratch(2);
        let acc = self.scratch(3);
        let tests = self.rng.range(3, 6);
        let off = self.rng.below(1 << 15);
        self.emit_ws_pointer(p, CURSOR, off);
        for j in 0..tests {
            self.b.push(Inst::lw(v, p, (j * 8) as i64));
            self.b.push(Inst::andi(t, v, 1));
            let skip = self.fresh_label("br_skip");
            // Biased data: bit 0 is mostly clear, so `bne` is mostly
            // not-taken — the predictor's accuracy tracks the data bias.
            self.b.push_branch(Inst::bne(t, Reg::ZERO, 0), skip.clone());
            self.emit_arith_fast(acc, acc, v);
            self.b.push(Inst::addi(acc, acc, 3));
            self.b.label(skip);
            self.emit_arith_fast(acc, acc, t);
        }
        let q = self.scratch(4);
        self.emit_ws_pointer(q, CURSOR, off + 64);
        self.b.push(Inst::sw(acc, q, 0));
    }

    /// A dispatcher calling 2–3 leaf functions (exercises jal/jalr + RAS).
    fn kernel_calls(&mut self, kernel_idx: usize) {
        let leaves = self.rng.range(2, 3);
        let skip = self.fresh_label("over_leaves");
        for l in 0..leaves {
            self.b
                .push_branch(Inst::jal(LINK2, 0), format!("leaf_{kernel_idx}_{l}"));
        }
        self.b.push_branch(Inst::j(0), skip.clone());
        for l in 0..leaves {
            self.b.label(format!("leaf_{kernel_idx}_{l}"));
            let r1 = self.scratch(l as usize % 4);
            let r2 = self.scratch((l as usize + 1) % 4);
            let r3 = self.scratch((l as usize + 2) % 4);
            let body = self.rng.range(2, 4);
            for _ in 0..body {
                self.emit_arith(r1, r1, r2);
                self.emit_arith_fast(r3, r3, r2);
            }
            self.emit_arith_fast(r1, r1, r3);
            self.b.push(Inst::jalr(Reg::ZERO, LINK2));
        }
        self.b.label(skip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ALL_BENCHMARKS;
    use rmt_isa::interp::Interpreter;
    use rmt_isa::Op;

    #[test]
    fn generation_is_deterministic() {
        for &b in &[Benchmark::Gcc, Benchmark::Swim] {
            let w1 = Workload::generate(b, 7);
            let w2 = Workload::generate(b, 7);
            assert_eq!(w1.program, w2.program);
            assert_eq!(w1.memory.digest(), w2.memory.digest());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = Workload::generate(Benchmark::Gcc, 1);
        let w2 = Workload::generate(Benchmark::Gcc, 2);
        assert_ne!(w1.program, w2.program);
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = Workload::generate(Benchmark::Gcc, 1);
        let b = Workload::generate(Benchmark::Swim, 1);
        assert_ne!(a.program, b.program);
    }

    #[test]
    fn all_benchmarks_generate_and_run() {
        for &b in ALL_BENCHMARKS {
            let w = Workload::generate(b, 42);
            assert!(w.program.len() > 50, "{b}: too small");
            let mut interp = Interpreter::new(&w.program, w.memory.clone());
            let stop = interp.run(20_000);
            assert!(stop.is_ok(), "{b}: {stop:?}");
            assert_eq!(interp.committed(), 20_000, "{b} halted early");
        }
    }

    #[test]
    fn programs_loop_forever() {
        // 200k instructions without leaving the program or halting.
        let w = Workload::generate(Benchmark::Go, 3);
        let mut interp = Interpreter::new(&w.program, w.memory.clone());
        interp.run(200_000).unwrap();
        assert!(!interp.is_halted());
    }

    #[test]
    fn fp_benchmarks_use_fp_ops_int_benchmarks_do_not() {
        let fp = Workload::generate(Benchmark::Swim, 1);
        assert!(fp
            .program
            .insts()
            .iter()
            .any(|i| matches!(i.op, Op::Fadd | Op::Fsub | Op::Fmul | Op::Fdiv)));
        let int = Workload::generate(Benchmark::Gcc, 1);
        assert!(!int
            .program
            .insts()
            .iter()
            .any(|i| matches!(i.op, Op::Fadd | Op::Fsub | Op::Fmul | Op::Fdiv)));
    }

    #[test]
    fn memory_accesses_stay_in_working_set() {
        // Run a while and check every load/store address lands in
        // [DATA_BASE, DATA_BASE + ws + small slack).
        for &b in &[Benchmark::Compress, Benchmark::Mgrid, Benchmark::Li] {
            let ws = b.profile().working_set;
            let w = Workload::generate(b, 9);
            let mut interp = Interpreter::new(&w.program, w.memory.clone());
            for _ in 0..50_000 {
                let c = interp.step().unwrap();
                for (addr, _, bytes) in c.store.iter().chain(c.load.iter()) {
                    assert!(
                        *addr >= DATA_BASE && addr + bytes <= DATA_BASE + ws + 64 * 1024,
                        "{b}: address {addr:#x} outside working set"
                    );
                }
            }
        }
    }

    #[test]
    fn branchy_benchmarks_have_more_branches() {
        let count_branches = |w: &Workload| {
            let total = w.program.len() as f64;
            let br = w
                .program
                .insts()
                .iter()
                .filter(|i| i.op.is_cond_branch())
                .count() as f64;
            br / total
        };
        let go = count_branches(&Workload::generate(Benchmark::Go, 5));
        let swim = count_branches(&Workload::generate(Benchmark::Swim, 5));
        assert!(go > swim, "go {go} vs swim {swim}");
    }

    #[test]
    fn working_set_memory_is_initialized() {
        let w = Workload::generate(Benchmark::Compress, 1);
        // The data half must not be all zeros.
        let mut nonzero = 0;
        for i in 0..64 {
            if w.memory.read_u64(DATA_BASE + i * 8) != 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 32);
    }

    #[test]
    fn chase_ring_is_a_cycle() {
        let b = Benchmark::Li;
        let w = Workload::generate(b, 1);
        let data_bytes = data_region_bytes(b.profile().working_set);
        let n = data_bytes / 8;
        let ring_base = DATA_BASE + data_bytes;
        // Follow the ring from slot 0; every visited relative index must be
        // in range, and in `n` hops we must return to the start (one cycle).
        let mut x = 0u64;
        for _ in 0..n {
            assert!(x < n, "chase index {x} out of range");
            x = w.memory.read_u64(ring_base + x * 8);
        }
        assert_eq!(x, 0, "ring is not a single cycle");
    }

    #[test]
    fn int_benchmarks_contain_partial_forward_pairs() {
        let w = Workload::generate(Benchmark::Compress, 1);
        assert!(w.program.insts().iter().any(|i| i.op == Op::Sb));
    }
}
