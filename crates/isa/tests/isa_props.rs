//! Property tests for the ISA layer, on the in-repo `rmt_stats::check`
//! harness: assembler/disassembler round-trips over every opcode, and
//! interpreter edge cases the pipeline's differential oracle relies on
//! being well-defined (address wraparound, branch-to-self spins, writes
//! to the hardwired zero register).

use rmt_isa::asm::assemble;
use rmt_isa::inst::{ALL_OPS, NUM_ARCH_REGS};
use rmt_isa::interp::{ArchState, Interpreter, StopReason};
use rmt_isa::{disasm, Inst, MemImage, Op, Program, Reg};
use rmt_stats::check::run_cases;
use rmt_stats::rng::Xoshiro256;

fn reg(rng: &mut Xoshiro256) -> Reg {
    Reg::new(rng.below(NUM_ARCH_REGS as u64) as u8)
}

/// Signed immediate that survives the decimal text round-trip.
fn alu_imm(rng: &mut Xoshiro256) -> i64 {
    rng.next_u64() as i32 as i64
}

/// Branch/jump target: non-negative (the disassembler prints targets in
/// two's-complement hex, so a negative target would not re-parse).
fn target(rng: &mut Xoshiro256) -> i64 {
    (rng.below(1 << 20) * 4) as i64
}

/// A random instruction built through the canonical per-op constructor,
/// so unused operand fields hold their canonical values (what the
/// assembler reconstructs).
fn inst(rng: &mut Xoshiro256) -> Inst {
    let op = *rng.pick(ALL_OPS);
    let (d, s1, s2) = (reg(rng), reg(rng), reg(rng));
    let imm = alu_imm(rng);
    let disp = (rng.next_u64() as i32 as i64) % 4096;
    use Op::*;
    match op {
        Add => Inst::add(d, s1, s2),
        Sub => Inst::sub(d, s1, s2),
        Mul => Inst::mul(d, s1, s2),
        Div => Inst::div(d, s1, s2),
        Slt => Inst::slt(d, s1, s2),
        Addi => Inst::addi(d, s1, imm),
        Slti => Inst::slti(d, s1, imm),
        Lui => Inst::lui(d, imm),
        And => Inst::and(d, s1, s2),
        Or => Inst::or(d, s1, s2),
        Xor => Inst::xor(d, s1, s2),
        Sll => Inst::sll(d, s1, s2),
        Srl => Inst::srl(d, s1, s2),
        Andi => Inst::andi(d, s1, imm),
        Ori => Inst::ori(d, s1, imm),
        Xori => Inst::xori(d, s1, imm),
        Slli => Inst::slli(d, s1, imm),
        Srli => Inst::srli(d, s1, imm),
        Lw => Inst::lw(d, s1, disp),
        Lb => Inst::lb(d, s1, disp),
        Sw => Inst::sw(s2, s1, disp),
        Sb => Inst::sb(s2, s1, disp),
        MemBar => Inst::membar(),
        Beq => Inst::beq(s1, s2, target(rng)),
        Bne => Inst::bne(s1, s2, target(rng)),
        Blt => Inst::blt(s1, s2, target(rng)),
        Bge => Inst::bge(s1, s2, target(rng)),
        J => Inst::j(target(rng)),
        Jal => Inst::jal(d, target(rng)),
        Jalr => Inst::jalr(d, s1),
        Fadd => Inst::fadd(d, s1, s2),
        Fsub => Inst::fsub(d, s1, s2),
        Fmul => Inst::fmul(d, s1, s2),
        Fdiv => Inst::fdiv(d, s1, s2),
        Nop => Inst::nop(),
        Halt => Inst::halt(),
    }
}

#[test]
fn disassembly_reassembles_to_the_same_instruction() {
    run_cases("asm/disasm round-trip", 256, 0x15a_0001, |rng| {
        let original = inst(rng);
        let text = disasm::disassemble(&original);
        let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}` does not assemble: {e}"));
        assert_eq!(
            program.insts(),
            &[original],
            "`{text}` re-assembled differently"
        );
    });
}

#[test]
fn whole_programs_round_trip_through_comments_and_blank_lines() {
    run_cases("program round-trip", 32, 0x15a_0002, |rng| {
        let insts: Vec<Inst> = (0..rng.range(1, 40)).map(|_| inst(rng)).collect();
        let text: String = insts
            .iter()
            .map(|i| format!("  {} ; trailing comment\n\n", disasm::disassemble(i)))
            .collect();
        let program = assemble(&text).expect("program assembles");
        assert_eq!(program.insts(), insts.as_slice());
    });
}

#[test]
fn effective_addresses_wrap_around_the_address_space() {
    // `rs1 + imm` wraps modulo 2^64: a base just below u64::MAX plus a
    // small positive displacement lands at a small address, and a
    // store/load pair through the wrapped address round-trips the value.
    run_cases("address wraparound", 128, 0x15a_0003, |rng| {
        let back = rng.range(1, 64);
        let landing = rng.below(1 << 20);
        let base = u64::MAX - back + 1; // base + back wraps to exactly 0
        let disp = (back + landing) as i64;
        let value = rng.next_u64();

        let program = Program::from_insts(vec![
            Inst::sw(Reg::new(2), Reg::new(1), disp),
            Inst::lw(Reg::new(3), Reg::new(1), disp),
            Inst::lb(Reg::new(4), Reg::new(1), disp),
            Inst::halt(),
        ]);
        let mut regs = [0u64; NUM_ARCH_REGS];
        regs[1] = base;
        regs[2] = value;
        let mut it =
            Interpreter::resume(&program, MemImage::new(), ArchState::from_parts(regs, 0), 0);

        let store = it.step().expect("sw steps").store.expect("sw stores");
        assert_eq!(store, (landing, value, 8), "store address must wrap");
        let load = it.step().expect("lw steps").load.expect("lw loads");
        assert_eq!(load, (landing, value, 8));
        assert_eq!(it.state().reg(Reg::new(3)), value);
        it.step().expect("lb steps");
        assert_eq!(it.state().reg(Reg::new(4)), value & 0xff);
        assert_eq!(it.run(4), Ok(StopReason::Halted));
    });
}

#[test]
fn branch_to_self_spins_exactly_to_the_step_budget() {
    run_cases("branch-to-self", 64, 0x15a_0004, |rng| {
        // nop* then an always-taken branch back to itself.
        let lead = rng.below(16) as usize;
        let self_pc = (lead * 4) as i64;
        let mut insts = vec![Inst::nop(); lead];
        insts.push(Inst::beq(Reg::ZERO, Reg::ZERO, self_pc));
        let program = Program::from_insts(insts);
        let mut it = Interpreter::new(&program, MemImage::new());

        let budget = rng.range(20, 200);
        assert_eq!(it.run(budget), Ok(StopReason::BudgetExhausted));
        assert_eq!(it.committed(), budget, "every step must commit");
        assert_eq!(it.state().pc(), self_pc as u64, "pc pinned at the spin");
        assert!(!it.is_halted());
    });
}

#[test]
fn never_taken_self_branch_falls_off_the_end() {
    // The dual edge case: `bne r0, r0, self` never fires, so the PC walks
    // past it and leaves the program.
    let program = Program::from_insts(vec![Inst::bne(Reg::ZERO, Reg::ZERO, 0)]);
    let mut it = Interpreter::new(&program, MemImage::new());
    assert!(it.step().is_ok());
    assert_eq!(it.step(), Err(StopReason::PcOutOfRange(4)));
}

#[test]
fn writes_to_r0_are_discarded() {
    run_cases("r0 sink writes", 128, 0x15a_0005, |rng| {
        // Any value-producing instruction targeting r0 — ALU result, load
        // data, or a jal link address — leaves r0 reading as zero.
        let s1 = Reg::new(rng.range(1, 63) as u8);
        let sink = match rng.below(4) {
            0 => Inst::addi(Reg::ZERO, s1, alu_imm(rng)),
            1 => Inst::add(Reg::ZERO, s1, s1),
            2 => Inst::lw(Reg::ZERO, s1, 0),
            _ => Inst::jal(Reg::ZERO, 4),
        };
        let program = Program::from_insts(vec![sink, Inst::halt()]);
        let mut regs = [0u64; NUM_ARCH_REGS];
        regs[s1.index() as usize] = rng.next_u64() >> 1;
        let mut mem = MemImage::new();
        mem.write_u64(regs[s1.index() as usize], rng.next_u64());
        let mut it = Interpreter::resume(&program, mem, ArchState::from_parts(regs, 0), 0);

        it.step().expect("sink instruction steps");
        assert_eq!(it.state().reg(Reg::ZERO), 0, "r0 must stay zero");
        assert_eq!(it.state().regs()[0], 0, "raw register file slot 0 too");
        assert_eq!(it.run(2), Ok(StopReason::Halted));
    });
}
