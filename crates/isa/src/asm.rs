//! A small assembler: parses the textual syntax [`crate::disasm`] emits —
//! plus labels — back into a [`Program`].
//!
//! Grammar (one instruction or label per line; `;` and `#` start comments):
//!
//! ```text
//! loop:                 ; a label
//!   addi  r1, r0, 5
//!   lw    r2, 8(r1)
//!   sw    r2, 16(r1)
//!   beq   r1, r2, loop  ; control targets: a label or a 0x/decimal PC
//!   jal   r63, loop
//!   halt
//! ```
//!
//! # Examples
//!
//! ```
//! use rmt_isa::asm::assemble;
//! use rmt_isa::interp::Interpreter;
//! use rmt_isa::MemImage;
//!
//! let p = assemble(r"
//!     addi r1, r0, 0
//!     addi r2, r0, 4
//! top:
//!     addi r1, r1, 1
//!     blt  r1, r2, top
//!     halt
//! ").unwrap();
//! let mut i = Interpreter::new(&p, MemImage::new());
//! i.run(100).unwrap();
//! assert_eq!(i.state().reg(rmt_isa::Reg::new(1)), 4);
//! ```

use crate::inst::{Inst, Op, Reg};
use crate::program::{Program, ProgramBuilder};
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let idx = tok
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| (n as usize) < crate::inst::NUM_ARCH_REGS)
        .ok_or_else(|| err(line, format!("bad register `{tok}`")))?;
    Ok(Reg::new(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// `imm(reg)` displacement operand.
fn parse_disp(tok: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `imm(reg)`, got `{tok}`")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let imm = parse_imm(&tok[..open], line)?;
    let reg = parse_reg(&close[open + 1..], line)?;
    Ok((reg, imm))
}

/// Control-flow target: a literal PC or a label name.
enum Target {
    Pc(i64),
    Label(String),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, AsmError> {
    if tok.starts_with(|c: char| c.is_ascii_digit()) || tok.starts_with('-') {
        Ok(Target::Pc(parse_imm(tok, line)?))
    } else if tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !tok.is_empty() {
        Ok(Target::Label(tok.to_string()))
    } else {
        Err(err(line, format!("bad branch target `{tok}`")))
    }
}

/// Assembles `source` into a program.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, bad operands, and undefined or duplicate labels.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut last_line = 0;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        last_line = line;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(line, format!("bad label `{label}`")));
            }
            b.label(label);
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` takes {n} operand(s), got {}", ops.len()),
                ))
            }
        };
        match mnemonic {
            // Three-register ALU forms.
            "add" | "sub" | "mul" | "div" | "slt" | "and" | "or" | "xor" | "sll" | "srl"
            | "fadd" | "fsub" | "fmul" | "fdiv" => {
                want(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let rs2 = parse_reg(ops[2], line)?;
                let op = match mnemonic {
                    "add" => Op::Add,
                    "sub" => Op::Sub,
                    "mul" => Op::Mul,
                    "div" => Op::Div,
                    "slt" => Op::Slt,
                    "and" => Op::And,
                    "or" => Op::Or,
                    "xor" => Op::Xor,
                    "sll" => Op::Sll,
                    "srl" => Op::Srl,
                    "fadd" => Op::Fadd,
                    "fsub" => Op::Fsub,
                    "fmul" => Op::Fmul,
                    _ => Op::Fdiv,
                };
                b.push(Inst::new(op, rd, rs1, rs2, 0));
            }
            // Register-immediate forms.
            "addi" | "slti" | "andi" | "ori" | "xori" | "slli" | "srli" => {
                want(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let imm = parse_imm(ops[2], line)?;
                let op = match mnemonic {
                    "addi" => Op::Addi,
                    "slti" => Op::Slti,
                    "andi" => Op::Andi,
                    "ori" => Op::Ori,
                    "xori" => Op::Xori,
                    "slli" => Op::Slli,
                    _ => Op::Srli,
                };
                b.push(Inst::new(op, rd, rs1, Reg::ZERO, imm));
            }
            "lui" => {
                want(2)?;
                b.push(Inst::lui(
                    parse_reg(ops[0], line)?,
                    parse_imm(ops[1], line)?,
                ));
            }
            // Memory forms: `reg, imm(reg)`.
            "lw" | "lb" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let (base, imm) = parse_disp(ops[1], line)?;
                b.push(if mnemonic == "lw" {
                    Inst::lw(rd, base, imm)
                } else {
                    Inst::lb(rd, base, imm)
                });
            }
            "sw" | "sb" => {
                want(2)?;
                let rs2 = parse_reg(ops[0], line)?;
                let (base, imm) = parse_disp(ops[1], line)?;
                b.push(if mnemonic == "sw" {
                    Inst::sw(rs2, base, imm)
                } else {
                    Inst::sb(rs2, base, imm)
                });
            }
            // Branches: `rs1, rs2, target`.
            "beq" | "bne" | "blt" | "bge" => {
                want(3)?;
                let rs1 = parse_reg(ops[0], line)?;
                let rs2 = parse_reg(ops[1], line)?;
                let op = match mnemonic {
                    "beq" => Op::Beq,
                    "bne" => Op::Bne,
                    "blt" => Op::Blt,
                    _ => Op::Bge,
                };
                match parse_target(ops[2], line)? {
                    Target::Pc(pc) => b.push(Inst::new(op, Reg::ZERO, rs1, rs2, pc)),
                    Target::Label(l) => b.push_branch(Inst::new(op, Reg::ZERO, rs1, rs2, 0), l),
                }
            }
            "j" => {
                want(1)?;
                match parse_target(ops[0], line)? {
                    Target::Pc(pc) => b.push(Inst::j(pc)),
                    Target::Label(l) => b.push_branch(Inst::j(0), l),
                }
            }
            "jal" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                match parse_target(ops[1], line)? {
                    Target::Pc(pc) => b.push(Inst::jal(rd, pc)),
                    Target::Label(l) => b.push_branch(Inst::jal(rd, 0), l),
                }
            }
            "jalr" => {
                want(2)?;
                b.push(Inst::jalr(
                    parse_reg(ops[0], line)?,
                    parse_reg(ops[1], line)?,
                ));
            }
            "membar" => {
                want(0)?;
                b.push(Inst::membar());
            }
            "nop" => {
                want(0)?;
                b.push(Inst::nop());
            }
            "halt" => {
                want(0)?;
                b.push(Inst::halt());
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }
    b.build().map_err(|e| err(last_line, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm;
    use crate::interp::Interpreter;
    use crate::mem_image::MemImage;

    #[test]
    fn assembles_and_runs_a_loop() {
        let p = assemble(
            r"
            addi r1, r0, 0
            addi r2, r0, 10
        loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            halt
        ",
        )
        .unwrap();
        let mut i = Interpreter::new(&p, MemImage::new());
        i.run(1_000).unwrap();
        assert_eq!(i.state().reg(Reg::new(1)), 10);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; a comment\n\n  nop # trailing\nhalt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn memory_displacement_forms() {
        let p = assemble("lw r1, 8(r2)\nsw r3, -16(r4)\nlb r5, 0x10(r6)\nsb r7, 0(r8)").unwrap();
        let i0 = p.fetch(0).unwrap();
        assert_eq!(
            (i0.op, i0.rd, i0.rs1, i0.imm),
            (Op::Lw, Reg::new(1), Reg::new(2), 8)
        );
        let i1 = p.fetch(4).unwrap();
        assert_eq!(
            (i1.op, i1.rs2, i1.rs1, i1.imm),
            (Op::Sw, Reg::new(3), Reg::new(4), -16)
        );
        assert_eq!(p.fetch(8).unwrap().imm, 16);
    }

    #[test]
    fn numeric_and_label_targets() {
        let p = assemble("j 0x10\nnop\nnop\nnop\ntop:\nj top").unwrap();
        assert_eq!(p.fetch(0).unwrap().imm, 16);
        // `top` is PC 16 (after four instructions); the final jump sits there
        // and targets itself.
        assert_eq!(p.fetch(16).unwrap().imm, 16);
    }

    #[test]
    fn error_reporting_names_the_line() {
        let e = assemble("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = assemble("addi r1, r0\n").unwrap_err();
        assert!(e.message.contains("3 operand"));
        let e = assemble("add r64, r0, r0\n").unwrap_err();
        assert!(e.message.contains("bad register"));
        let e = assemble("j missing\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn disasm_output_reassembles_for_non_control_ops() {
        // Round trip every non-control opcode through disasm -> asm.
        use crate::inst::ALL_OPS;
        for &op in ALL_OPS {
            if op.is_control() {
                continue; // control ops print absolute targets; tested below
            }
            let inst = Inst::new(op, Reg::new(3), Reg::new(4), Reg::new(5), 8);
            let text = disasm::disassemble(&inst);
            let p = assemble(&text).unwrap_or_else(|e| panic!("{op:?}: {e}\n{text}"));
            let got = p.fetch(0).unwrap();
            assert_eq!(got.op, op, "{text}");
        }
    }

    #[test]
    fn control_ops_roundtrip_with_numeric_targets() {
        for text in ["beq   r1, r2, 0x40", "j     0x100", "jal   r63, 0x8"] {
            let p = assemble(text).unwrap();
            let inst = p.fetch(0).unwrap();
            let again = disasm::disassemble(inst);
            assert_eq!(
                again.split_whitespace().collect::<Vec<_>>(),
                text.split_whitespace().collect::<Vec<_>>()
            );
        }
    }
}
