//! Functional semantics.
//!
//! [`execute`] computes an instruction's result from its operand values.
//! Both the reference interpreter and the pipeline's execute stage call this
//! single implementation, which is what makes differential testing between
//! them meaningful: any divergence is a *pipeline* bug, not a semantics
//! disagreement.

use crate::inst::{Inst, Op};

/// The effect of executing one instruction, before memory is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Writes `value` to the destination register (if any).
    Value(u64),
    /// A load from `addr` of `bytes` bytes; the memory system supplies the
    /// register value.
    Load {
        /// Effective address.
        addr: u64,
        /// Access size in bytes (1 or 8).
        bytes: u64,
    },
    /// A store of `value` (low `bytes` bytes) to `addr`.
    Store {
        /// Effective address.
        addr: u64,
        /// Value to store (only the low `bytes` bytes are used).
        value: u64,
        /// Access size in bytes (1 or 8).
        bytes: u64,
    },
    /// A resolved control transfer.
    Control {
        /// Whether the branch is taken (always true for jumps).
        taken: bool,
        /// The next PC (target if taken, fall-through otherwise).
        next_pc: u64,
        /// Link value to write to `rd` (for `jal`/`jalr`).
        link: Option<u64>,
    },
    /// A memory barrier (no value, special retirement rules).
    MemBar,
    /// No architectural effect.
    Nop,
    /// Thread stop.
    Halt,
}

impl ExecOutcome {
    /// The register value produced by this outcome, if it is a simple value
    /// or a link write.
    pub fn reg_value(&self) -> Option<u64> {
        match self {
            ExecOutcome::Value(v) => Some(*v),
            ExecOutcome::Control { link, .. } => *link,
            _ => None,
        }
    }
}

/// "Floating point" stand-in arithmetic: deterministic 64-bit integer ops
/// with FP latencies (see `rmt_isa::inst`). Mixed with a rotate so that
/// fadd/fsub/fmul produce well-distributed bits, which keeps synthetic FP
/// workloads' values from collapsing to small integers.
fn fp_mix(a: u64, b: u64, salt: u64) -> u64 {
    a.wrapping_add(b.rotate_left(17) ^ salt)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1)
}

/// Executes `inst` at `pc` with operand values `a` (rs1) and `b` (rs2).
///
/// Returns what should happen architecturally; memory is not accessed here.
///
/// # Examples
///
/// ```
/// use rmt_isa::{execute, ExecOutcome, Inst, Reg};
///
/// let inst = Inst::addi(Reg::new(1), Reg::ZERO, 41);
/// assert_eq!(execute(&inst, 0, 0, 0), ExecOutcome::Value(41));
/// ```
pub fn execute(inst: &Inst, pc: u64, a: u64, b: u64) -> ExecOutcome {
    use Op::*;
    let imm = inst.imm;
    let immu = imm as u64;
    match inst.op {
        Add => ExecOutcome::Value(a.wrapping_add(b)),
        Sub => ExecOutcome::Value(a.wrapping_sub(b)),
        Mul => ExecOutcome::Value(a.wrapping_mul(b)),
        Div => ExecOutcome::Value(if b == 0 { 0 } else { a.wrapping_div(b) }),
        Slt => ExecOutcome::Value((a < b) as u64),
        Addi => ExecOutcome::Value(a.wrapping_add(immu)),
        Slti => ExecOutcome::Value((a < immu) as u64),
        Lui => ExecOutcome::Value(immu << 16),
        And => ExecOutcome::Value(a & b),
        Or => ExecOutcome::Value(a | b),
        Xor => ExecOutcome::Value(a ^ b),
        Sll => ExecOutcome::Value(a << (b & 63)),
        Srl => ExecOutcome::Value(a >> (b & 63)),
        Andi => ExecOutcome::Value(a & immu),
        Ori => ExecOutcome::Value(a | immu),
        Xori => ExecOutcome::Value(a ^ immu),
        Slli => ExecOutcome::Value(a << (immu & 63)),
        Srli => ExecOutcome::Value(a >> (immu & 63)),
        Lw => ExecOutcome::Load {
            addr: a.wrapping_add(immu),
            bytes: 8,
        },
        Lb => ExecOutcome::Load {
            addr: a.wrapping_add(immu),
            bytes: 1,
        },
        Sw => ExecOutcome::Store {
            addr: a.wrapping_add(immu),
            value: b,
            bytes: 8,
        },
        Sb => ExecOutcome::Store {
            addr: a.wrapping_add(immu),
            value: b & 0xff,
            bytes: 1,
        },
        MemBar => ExecOutcome::MemBar,
        Beq | Bne | Blt | Bge => {
            let taken = match inst.op {
                Beq => a == b,
                Bne => a != b,
                Blt => a < b,
                Bge => a >= b,
                _ => unreachable!(),
            };
            ExecOutcome::Control {
                taken,
                next_pc: if taken { immu } else { pc.wrapping_add(4) },
                link: None,
            }
        }
        J => ExecOutcome::Control {
            taken: true,
            next_pc: immu,
            link: None,
        },
        Jal => ExecOutcome::Control {
            taken: true,
            next_pc: immu,
            link: Some(pc.wrapping_add(4)),
        },
        Jalr => ExecOutcome::Control {
            taken: true,
            next_pc: a & !3, // force 4-byte alignment
            link: Some(pc.wrapping_add(4)),
        },
        Fadd => ExecOutcome::Value(fp_mix(a, b, 0x1111)),
        Fsub => ExecOutcome::Value(fp_mix(a, !b, 0x2222)),
        Fmul => ExecOutcome::Value(fp_mix(a.rotate_left(13), b, 0x3333)),
        Fdiv => ExecOutcome::Value(fp_mix(a, b.rotate_right(7), 0x4444)),
        Nop => ExecOutcome::Nop,
        Halt => ExecOutcome::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn alu_basics() {
        assert_eq!(
            execute(&Inst::add(r(1), r(2), r(3)), 0, 5, 7),
            ExecOutcome::Value(12)
        );
        assert_eq!(
            execute(&Inst::sub(r(1), r(2), r(3)), 0, 5, 7),
            ExecOutcome::Value(u64::MAX - 1)
        );
        assert_eq!(
            execute(&Inst::mul(r(1), r(2), r(3)), 0, 3, 4),
            ExecOutcome::Value(12)
        );
        assert_eq!(
            execute(&Inst::div(r(1), r(2), r(3)), 0, 12, 4),
            ExecOutcome::Value(3)
        );
        assert_eq!(
            execute(&Inst::div(r(1), r(2), r(3)), 0, 12, 0),
            ExecOutcome::Value(0)
        );
        assert_eq!(
            execute(&Inst::slt(r(1), r(2), r(3)), 0, 1, 2),
            ExecOutcome::Value(1)
        );
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(
            execute(&Inst::and(r(1), r(2), r(3)), 0, 0b1100, 0b1010),
            ExecOutcome::Value(0b1000)
        );
        assert_eq!(
            execute(&Inst::or(r(1), r(2), r(3)), 0, 0b1100, 0b1010),
            ExecOutcome::Value(0b1110)
        );
        assert_eq!(
            execute(&Inst::xor(r(1), r(2), r(3)), 0, 0b1100, 0b1010),
            ExecOutcome::Value(0b0110)
        );
        assert_eq!(
            execute(&Inst::sll(r(1), r(2), r(3)), 0, 1, 65),
            ExecOutcome::Value(2)
        );
        assert_eq!(
            execute(&Inst::srli(r(1), r(2), 3), 0, 16, 0),
            ExecOutcome::Value(2)
        );
    }

    #[test]
    fn immediates() {
        assert_eq!(
            execute(&Inst::addi(r(1), r(2), -1), 0, 5, 0),
            ExecOutcome::Value(4)
        );
        assert_eq!(
            execute(&Inst::lui(r(1), 3), 0, 0, 0),
            ExecOutcome::Value(3 << 16)
        );
        assert_eq!(
            execute(&Inst::slti(r(1), r(2), 10), 0, 5, 0),
            ExecOutcome::Value(1)
        );
    }

    #[test]
    fn loads_and_stores_compute_addresses() {
        match execute(&Inst::lw(r(1), r(2), 16), 0, 100, 0) {
            ExecOutcome::Load { addr, bytes } => {
                assert_eq!(addr, 116);
                assert_eq!(bytes, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        match execute(&Inst::sb(r(3), r(2), -4), 0, 100, 0xabcd) {
            ExecOutcome::Store { addr, value, bytes } => {
                assert_eq!(addr, 96);
                assert_eq!(value, 0xcd);
                assert_eq!(bytes, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branches_resolve_both_ways() {
        let b = Inst::beq(r(1), r(2), 100);
        assert_eq!(
            execute(&b, 20, 5, 5),
            ExecOutcome::Control {
                taken: true,
                next_pc: 100,
                link: None
            }
        );
        assert_eq!(
            execute(&b, 20, 5, 6),
            ExecOutcome::Control {
                taken: false,
                next_pc: 24,
                link: None
            }
        );
        let blt = Inst::blt(r(1), r(2), 8);
        assert_eq!(
            execute(&blt, 0, 1, 2),
            ExecOutcome::Control {
                taken: true,
                next_pc: 8,
                link: None
            }
        );
        let bge = Inst::bge(r(1), r(2), 8);
        assert_eq!(
            execute(&bge, 0, 2, 2),
            ExecOutcome::Control {
                taken: true,
                next_pc: 8,
                link: None
            }
        );
    }

    #[test]
    fn jumps_link() {
        assert_eq!(
            execute(&Inst::jal(Reg::RA, 40), 8, 0, 0),
            ExecOutcome::Control {
                taken: true,
                next_pc: 40,
                link: Some(12)
            }
        );
        assert_eq!(
            execute(&Inst::jalr(Reg::RA, r(5)), 8, 103, 0),
            ExecOutcome::Control {
                taken: true,
                next_pc: 100,
                link: Some(12)
            }
        );
        assert_eq!(
            execute(&Inst::j(32), 8, 0, 0),
            ExecOutcome::Control {
                taken: true,
                next_pc: 32,
                link: None
            }
        );
    }

    #[test]
    fn fp_is_deterministic_and_spread() {
        let x = execute(&Inst::fadd(r(1), r(2), r(3)), 0, 1, 2);
        let y = execute(&Inst::fadd(r(1), r(2), r(3)), 0, 1, 2);
        assert_eq!(x, y);
        // Different ops with the same inputs differ:
        let z = execute(&Inst::fmul(r(1), r(2), r(3)), 0, 1, 2);
        assert_ne!(x, z);
    }

    #[test]
    fn special_outcomes() {
        assert_eq!(execute(&Inst::membar(), 0, 0, 0), ExecOutcome::MemBar);
        assert_eq!(execute(&Inst::nop(), 0, 0, 0), ExecOutcome::Nop);
        assert_eq!(execute(&Inst::halt(), 0, 0, 0), ExecOutcome::Halt);
    }

    #[test]
    fn reg_value_extraction() {
        assert_eq!(ExecOutcome::Value(3).reg_value(), Some(3));
        assert_eq!(
            ExecOutcome::Control {
                taken: true,
                next_pc: 0,
                link: Some(8)
            }
            .reg_value(),
            Some(8)
        );
        assert_eq!(ExecOutcome::Nop.reg_value(), None);
        assert_eq!(ExecOutcome::Load { addr: 0, bytes: 8 }.reg_value(), None);
    }
}
