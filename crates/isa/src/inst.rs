//! Instruction format, opcodes and encode/decode.
//!
//! The ISA is a 64-bit, fixed-width (4-byte) RISC:
//!
//! * 64 architectural general-purpose registers per thread (the paper's base
//!   processor, Table 1); `r0` is hardwired to zero.
//! * Integer, logic, memory and floating-point opcode classes mapping onto
//!   the base processor's four functional-unit pools.
//! * Word (8-byte) and byte memory accesses — the byte store / word load pair
//!   exercises the partial-forwarding path the paper's §4.4.2 chunk
//!   termination rule exists for.
//! * A `MemBar` memory barrier, the other §4.4.2 deadlock case.
//!
//! "Floating point" opcodes are executed as integer bit-ops with FP-like
//! latencies: the pipeline only cares about latency, FU class and the fact
//! that values are deterministic (DESIGN.md §1).

use std::fmt;

/// An architectural register index in `0..64`. `r0` reads as zero and
/// ignores writes.
///
/// # Examples
///
/// ```
/// use rmt_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// Number of architectural registers per thread.
pub const NUM_ARCH_REGS: usize = 64;

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional return-address register (used by `jal`).
    pub const RA: Reg = Reg(63);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    pub const fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_ARCH_REGS,
            "register index out of range"
        );
        Reg(index)
    }

    /// The register's index in `0..64`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Opcodes. Grouped by functional-unit class (see [`FuClass`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the documentation
pub enum Op {
    // Integer units.
    Add,
    Sub,
    Mul,
    Div,
    Slt,
    Addi,
    Slti,
    Lui,
    // Logic units.
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    // Memory units.
    /// Load 8-byte word: `rd = mem[rs1 + imm]`.
    Lw,
    /// Load byte (zero-extended).
    Lb,
    /// Store 8-byte word: `mem[rs1 + imm] = rs2`.
    Sw,
    /// Store byte (low 8 bits of rs2).
    Sb,
    /// Memory barrier: retires only once the thread's store queue drained.
    MemBar,
    // Control (executes on integer units).
    Beq,
    Bne,
    Blt,
    Bge,
    /// Unconditional jump to `imm` (byte target).
    J,
    /// Jump and link: `rd = pc + 4; pc = imm`.
    Jal,
    /// Jump register: `rd = pc + 4; pc = rs1`.
    Jalr,
    // Floating point (bit-deterministic stand-ins).
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    // Misc.
    Nop,
    /// Stops the thread.
    Halt,
}

/// The functional-unit pool an instruction issues to (Table 1: 8 integer,
/// 8 logic, 4 memory, 4 floating-point units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU (also executes branches and jumps).
    Int,
    /// Logic/shift units.
    Logic,
    /// Memory (address generation + cache port).
    Mem,
    /// Floating point.
    Fp,
}

impl Op {
    /// The functional-unit class this opcode issues to.
    pub fn fu_class(self) -> FuClass {
        use Op::*;
        match self {
            Add | Sub | Mul | Div | Slt | Addi | Slti | Lui | Beq | Bne | Blt | Bge | J | Jal
            | Jalr | Nop | Halt => FuClass::Int,
            And | Or | Xor | Sll | Srl | Andi | Ori | Xori | Slli | Srli => FuClass::Logic,
            Lw | Lb | Sw | Sb | MemBar => FuClass::Mem,
            Fadd | Fsub | Fmul | Fdiv => FuClass::Fp,
        }
    }

    /// Execution latency in cycles once operands are read (EBOX/FBOX).
    /// Simple ALU ops take 1 cycle (Figure 2's `E = 1`); multiplies,
    /// divides and FP ops take longer, as on the Alpha 21264/21464.
    pub fn latency(self) -> u32 {
        use Op::*;
        match self {
            Mul => 7,
            Div => 20,
            Fadd | Fsub => 4,
            Fmul => 4,
            Fdiv => 16,
            _ => 1,
        }
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Op::Beq | Op::Bne | Op::Blt | Op::Bge)
    }

    /// Whether this is any control transfer (branch or jump).
    pub fn is_control(self) -> bool {
        self.is_cond_branch() || matches!(self, Op::J | Op::Jal | Op::Jalr)
    }

    /// Whether this is a load.
    pub fn is_load(self) -> bool {
        matches!(self, Op::Lw | Op::Lb)
    }

    /// Whether this is a store.
    pub fn is_store(self) -> bool {
        matches!(self, Op::Sw | Op::Sb)
    }

    /// Access size in bytes for loads/stores, zero otherwise.
    pub fn access_bytes(self) -> u64 {
        match self {
            Op::Lw | Op::Sw => 8,
            Op::Lb | Op::Sb => 1,
            _ => 0,
        }
    }
}

/// One decoded instruction.
///
/// All fields are public in the C-struct spirit: an `Inst` is passive data
/// with no invariants beyond the register range enforced by [`Reg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// Destination register (ignored by ops without a destination).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate / branch or jump target (byte address for control ops).
    pub imm: i64,
}

impl Inst {
    /// Creates an instruction from raw parts.
    pub fn new(op: Op, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> Self {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    /// `rd = rs1 + rs2`
    pub fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Add, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 - rs2`
    pub fn sub(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Sub, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 * rs2`
    pub fn mul(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Mul, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 / max(rs2,1)`
    pub fn div(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Div, rd, rs1, rs2, 0)
    }
    /// `rd = (rs1 < rs2) as u64` (unsigned)
    pub fn slt(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Slt, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 + imm`
    pub fn addi(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Addi, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = (rs1 < imm) as u64` (unsigned)
    pub fn slti(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Slti, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = imm << 16`
    pub fn lui(rd: Reg, imm: i64) -> Self {
        Self::new(Op::Lui, rd, Reg::ZERO, Reg::ZERO, imm)
    }
    /// `rd = rs1 & rs2`
    pub fn and(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::And, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 | rs2`
    pub fn or(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Or, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Xor, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 << (rs2 & 63)`
    pub fn sll(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Sll, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 >> (rs2 & 63)`
    pub fn srl(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Srl, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 & imm`
    pub fn andi(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Andi, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = rs1 | imm`
    pub fn ori(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Ori, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Xori, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = rs1 << (imm & 63)`
    pub fn slli(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Slli, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = rs1 >> (imm & 63)`
    pub fn srli(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Srli, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = mem64[rs1 + imm]`
    pub fn lw(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Lw, rd, rs1, Reg::ZERO, imm)
    }
    /// `rd = mem8[rs1 + imm]` (zero-extended)
    pub fn lb(rd: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Lb, rd, rs1, Reg::ZERO, imm)
    }
    /// `mem64[rs1 + imm] = rs2`
    pub fn sw(rs2: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Sw, Reg::ZERO, rs1, rs2, imm)
    }
    /// `mem8[rs1 + imm] = rs2 & 0xff`
    pub fn sb(rs2: Reg, rs1: Reg, imm: i64) -> Self {
        Self::new(Op::Sb, Reg::ZERO, rs1, rs2, imm)
    }
    /// Memory barrier.
    pub fn membar() -> Self {
        Self::new(Op::MemBar, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }
    /// `if rs1 == rs2 goto target`
    pub fn beq(rs1: Reg, rs2: Reg, target: i64) -> Self {
        Self::new(Op::Beq, Reg::ZERO, rs1, rs2, target)
    }
    /// `if rs1 != rs2 goto target`
    pub fn bne(rs1: Reg, rs2: Reg, target: i64) -> Self {
        Self::new(Op::Bne, Reg::ZERO, rs1, rs2, target)
    }
    /// `if rs1 < rs2 goto target` (unsigned)
    pub fn blt(rs1: Reg, rs2: Reg, target: i64) -> Self {
        Self::new(Op::Blt, Reg::ZERO, rs1, rs2, target)
    }
    /// `if rs1 >= rs2 goto target` (unsigned)
    pub fn bge(rs1: Reg, rs2: Reg, target: i64) -> Self {
        Self::new(Op::Bge, Reg::ZERO, rs1, rs2, target)
    }
    /// `goto target`
    pub fn j(target: i64) -> Self {
        Self::new(Op::J, Reg::ZERO, Reg::ZERO, Reg::ZERO, target)
    }
    /// `rd = pc + 4; goto target`
    pub fn jal(rd: Reg, target: i64) -> Self {
        Self::new(Op::Jal, rd, Reg::ZERO, Reg::ZERO, target)
    }
    /// `rd = pc + 4; goto rs1`
    pub fn jalr(rd: Reg, rs1: Reg) -> Self {
        Self::new(Op::Jalr, rd, rs1, Reg::ZERO, 0)
    }
    /// FP add stand-in.
    pub fn fadd(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Fadd, rd, rs1, rs2, 0)
    }
    /// FP sub stand-in.
    pub fn fsub(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Fsub, rd, rs1, rs2, 0)
    }
    /// FP mul stand-in.
    pub fn fmul(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Fmul, rd, rs1, rs2, 0)
    }
    /// FP div stand-in.
    pub fn fdiv(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self::new(Op::Fdiv, rd, rs1, rs2, 0)
    }
    /// No-operation.
    pub fn nop() -> Self {
        Self::new(Op::Nop, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }
    /// Thread stop.
    pub fn halt() -> Self {
        Self::new(Op::Halt, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }

    /// Whether the instruction writes an architectural register.
    pub fn writes_reg(&self) -> bool {
        use Op::*;
        !self.rd.is_zero()
            && !matches!(
                self.op,
                Sw | Sb | MemBar | Beq | Bne | Blt | Bge | J | Nop | Halt
            )
    }

    /// The source registers actually read by this instruction.
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        use Op::*;
        match self.op {
            Add | Sub | Mul | Div | Slt | And | Or | Xor | Sll | Srl | Fadd | Fsub | Fmul
            | Fdiv | Beq | Bne | Blt | Bge => (Some(self.rs1), Some(self.rs2)),
            Addi | Slti | Andi | Ori | Xori | Slli | Srli | Lw | Lb | Jalr => {
                (Some(self.rs1), None)
            }
            Sw | Sb => (Some(self.rs1), Some(self.rs2)),
            Lui | J | Jal | MemBar | Nop | Halt => (None, None),
        }
    }

    /// FU class shortcut.
    pub fn fu_class(&self) -> FuClass {
        self.op.fu_class()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} rd={} rs1={} rs2={} imm={}",
            self.op, self.rd, self.rs1, self.rs2, self.imm
        )
    }
}

/// All opcodes, in encoding order. Public so property tests can sweep the
/// full ISA.
pub const ALL_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::Slt,
    Op::Addi,
    Op::Slti,
    Op::Lui,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Sll,
    Op::Srl,
    Op::Andi,
    Op::Ori,
    Op::Xori,
    Op::Slli,
    Op::Srli,
    Op::Lw,
    Op::Lb,
    Op::Sw,
    Op::Sb,
    Op::MemBar,
    Op::Beq,
    Op::Bne,
    Op::Blt,
    Op::Bge,
    Op::J,
    Op::Jal,
    Op::Jalr,
    Op::Fadd,
    Op::Fsub,
    Op::Fmul,
    Op::Fdiv,
    Op::Nop,
    Op::Halt,
];

/// Error returned by [`Inst::decode`] for malformed words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The opcode field that failed to decode.
    pub opcode: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid opcode field {:#x}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

impl Inst {
    /// Encodes the instruction into a 64-bit word:
    /// `[63:32] imm (i32), [31:24] opcode, [23:18] rd, [17:12] rs1, [11:6] rs2`.
    ///
    /// The immediate is truncated to 32 bits, which is sufficient for all
    /// generated programs (addresses fit in 32 bits).
    pub fn encode(&self) -> u64 {
        let opcode = ALL_OPS
            .iter()
            .position(|o| *o == self.op)
            .expect("op in table") as u64;
        ((self.imm as i32 as u32 as u64) << 32)
            | (opcode << 24)
            | ((self.rd.index() as u64) << 18)
            | ((self.rs1.index() as u64) << 12)
            | ((self.rs2.index() as u64) << 6)
    }

    /// Decodes a word produced by [`Inst::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode field is out of range.
    pub fn decode(word: u64) -> Result<Inst, DecodeError> {
        let opcode = ((word >> 24) & 0xff) as u8;
        let op = *ALL_OPS.get(opcode as usize).ok_or(DecodeError { opcode })?;
        Ok(Inst {
            op,
            rd: Reg::new(((word >> 18) & 0x3f) as u8),
            rs1: Reg::new(((word >> 12) & 0x3f) as u8),
            rs2: Reg::new(((word >> 6) & 0x3f) as u8),
            imm: ((word >> 32) as u32 as i32) as i64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(63).index(), 63);
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        Reg::new(64);
    }

    #[test]
    fn fu_classes_partition_ops() {
        for &op in ALL_OPS {
            // Every op maps to exactly one class without panicking.
            let _ = op.fu_class();
        }
        assert_eq!(Op::Add.fu_class(), FuClass::Int);
        assert_eq!(Op::Xor.fu_class(), FuClass::Logic);
        assert_eq!(Op::Lw.fu_class(), FuClass::Mem);
        assert_eq!(Op::Fmul.fu_class(), FuClass::Fp);
        assert_eq!(Op::Beq.fu_class(), FuClass::Int);
    }

    #[test]
    fn latencies_are_positive_and_ordered() {
        for &op in ALL_OPS {
            assert!(op.latency() >= 1);
        }
        assert!(Op::Mul.latency() > Op::Add.latency());
        assert!(Op::Div.latency() > Op::Mul.latency());
        assert!(Op::Fdiv.latency() > Op::Fadd.latency());
    }

    #[test]
    fn writes_reg_excludes_stores_branches_and_r0() {
        assert!(Inst::add(Reg::new(1), Reg::ZERO, Reg::ZERO).writes_reg());
        assert!(!Inst::add(Reg::ZERO, Reg::new(1), Reg::new(2)).writes_reg());
        assert!(!Inst::sw(Reg::new(1), Reg::new(2), 0).writes_reg());
        assert!(!Inst::beq(Reg::new(1), Reg::new(2), 0).writes_reg());
        assert!(Inst::jal(Reg::RA, 0).writes_reg());
        assert!(Inst::lw(Reg::new(3), Reg::new(2), 8).writes_reg());
    }

    #[test]
    fn sources_match_semantics() {
        let add = Inst::add(Reg::new(1), Reg::new(2), Reg::new(3));
        assert_eq!(add.sources(), (Some(Reg::new(2)), Some(Reg::new(3))));
        let addi = Inst::addi(Reg::new(1), Reg::new(2), 5);
        assert_eq!(addi.sources(), (Some(Reg::new(2)), None));
        let sw = Inst::sw(Reg::new(4), Reg::new(5), 0);
        assert_eq!(sw.sources(), (Some(Reg::new(5)), Some(Reg::new(4))));
        let j = Inst::j(16);
        assert_eq!(j.sources(), (None, None));
    }

    #[test]
    fn control_and_memory_predicates() {
        assert!(Op::Beq.is_cond_branch());
        assert!(!Op::J.is_cond_branch());
        assert!(Op::J.is_control());
        assert!(Op::Jalr.is_control());
        assert!(Op::Lw.is_load());
        assert!(Op::Sb.is_store());
        assert_eq!(Op::Lw.access_bytes(), 8);
        assert_eq!(Op::Sb.access_bytes(), 1);
        assert_eq!(Op::Add.access_bytes(), 0);
    }

    #[test]
    fn encode_decode_roundtrip_all_ops() {
        for &op in ALL_OPS {
            let inst = Inst::new(op, Reg::new(7), Reg::new(13), Reg::new(63), -12345);
            let decoded = Inst::decode(inst.encode()).unwrap();
            assert_eq!(inst, decoded, "op {op:?}");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let bad = (200u64) << 24;
        assert!(Inst::decode(bad).is_err());
        let err = Inst::decode(bad).unwrap_err();
        assert_eq!(err.opcode, 200);
        assert!(err.to_string().contains("invalid opcode"));
    }

    #[test]
    fn display_is_nonempty() {
        let text = Inst::add(Reg::new(1), Reg::new(2), Reg::new(3)).to_string();
        assert!(text.contains("Add"));
    }
}
