//! Sparse, paged architectural memory.
//!
//! Each *logical program* owns one [`MemImage`]: the architectural data
//! memory outside the sphere of replication. Timing is modelled separately
//! by `rmt-mem` caches; this type is purely functional, which is what lets
//! the simulator separate "what value does this load see" from "how long
//! does it take".
//!
//! All accesses are little-endian. Unwritten memory reads as zero.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse 64-bit byte-addressable memory image.
///
/// # Examples
///
/// ```
/// use rmt_isa::MemImage;
///
/// let mut m = MemImage::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x1000), 0xef); // little endian
/// assert_eq!(m.read_u64(0x9999_0000), 0); // unwritten reads as zero
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MemImage {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads a little-endian 64-bit word (may straddle pages).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..8 {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes a little-endian 64-bit word (may straddle pages).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for i in 0..8 {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads `bytes` bytes (1 or 8) as a zero-extended value.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1 or 8.
    pub fn read(&self, addr: u64, bytes: u64) -> u64 {
        match bytes {
            1 => self.read_u8(addr) as u64,
            8 => self.read_u64(addr),
            other => panic!("unsupported access size {other}"),
        }
    }

    /// Writes the low `bytes` bytes (1 or 8) of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1 or 8.
    pub fn write(&mut self, addr: u64, value: u64, bytes: u64) {
        match bytes {
            1 => self.write_u8(addr, value as u8),
            8 => self.write_u64(addr, value),
            other => panic!("unsupported access size {other}"),
        }
    }

    /// Number of materialized pages (for tests and memory accounting).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The page size in bytes (granularity of [`Self::pages_sorted`]).
    pub const PAGE_BYTES: usize = PAGE_SIZE;

    /// The non-zero pages as `(page_index, contents)`, sorted by index.
    ///
    /// All-zero pages are skipped, matching [`Self::digest`] — two images
    /// with equal digests serialize identically.
    pub fn pages_sorted(&self) -> Vec<(u64, &[u8; PAGE_SIZE])> {
        let mut out: Vec<(u64, &[u8; PAGE_SIZE])> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|b| *b != 0))
            .map(|(k, p)| (*k, &**p))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Installs a full page at `page_index` (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`Self::PAGE_BYTES`] long.
    pub fn install_page(&mut self, page_index: u64, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "a page is {PAGE_SIZE} bytes");
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page.copy_from_slice(data);
        self.pages.insert(page_index, page);
    }

    /// Returns a canonical digest of the full image contents, used to compare
    /// architectural state between redundant executions. Zero pages and
    /// absent pages hash identically.
    pub fn digest(&self) -> u64 {
        // FNV-1a over (page_index, non-zero contents), pages in sorted order.
        let mut keys: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|b| *b != 0))
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for k in keys {
            for i in 0..8 {
                mix((k >> (8 * i)) as u8);
            }
            let page = &self.pages[&k];
            for &b in page.iter() {
                mix(b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_unwritten() {
        let m = MemImage::new();
        assert_eq!(m.read_u8(123), 0);
        assert_eq!(m.read_u64(0xffff_ffff_ffff_0000), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn byte_roundtrip() {
        let mut m = MemImage::new();
        m.write_u8(5, 0xab);
        assert_eq!(m.read_u8(5), 0xab);
        assert_eq!(m.read_u8(6), 0);
    }

    #[test]
    fn word_roundtrip_and_endianness() {
        let mut m = MemImage::new();
        m.write_u64(0x100, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(0x100), 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(0x100), 0x08);
        assert_eq!(m.read_u8(0x107), 0x01);
    }

    #[test]
    fn word_straddles_page_boundary() {
        let mut m = MemImage::new();
        let addr = (1 << PAGE_SHIFT) - 4;
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn sized_access_dispatch() {
        let mut m = MemImage::new();
        m.write(0, 0x1234, 8);
        assert_eq!(m.read(0, 8), 0x1234);
        m.write(100, 0xff55, 1);
        assert_eq!(m.read(100, 1), 0x55);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn bad_size_panics() {
        MemImage::new().read(0, 4);
    }

    #[test]
    fn digest_ignores_zero_pages() {
        let empty = MemImage::new();
        let mut touched = MemImage::new();
        touched.write_u8(0x4000, 0);
        assert_eq!(empty.digest(), touched.digest());
    }

    #[test]
    fn digest_detects_single_bit_difference() {
        let mut a = MemImage::new();
        let mut b = MemImage::new();
        a.write_u64(0x2000, 42);
        b.write_u64(0x2000, 43);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_order_independent() {
        let mut a = MemImage::new();
        a.write_u8(0x1000, 1);
        a.write_u8(0x9000, 2);
        let mut b = MemImage::new();
        b.write_u8(0x9000, 2);
        b.write_u8(0x1000, 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn clone_is_independent() {
        let mut a = MemImage::new();
        a.write_u8(0, 1);
        let mut b = a.clone();
        b.write_u8(0, 2);
        assert_eq!(a.read_u8(0), 1);
        assert_eq!(b.read_u8(0), 2);
    }
}
