//! The instruction set executed by the simulated RMT machines.
//!
//! The paper's machines run Alpha binaries; we substitute a small 64-bit
//! RISC ISA with full functional semantics so that redundant execution,
//! output comparison and fault injection operate on *real values* rather
//! than scripted traces (see DESIGN.md §1).
//!
//! Contents:
//!
//! * [`inst`] — opcodes, instruction format, encode/decode.
//! * [`exec`] — functional semantics of each opcode.
//! * [`disasm`] — conventional assembly rendering for tools and debugging.
//! * [`asm`] — the matching assembler (text with labels → [`Program`]).
//! * [`mem_image`] — a sparse, paged architectural memory image.
//! * [`program`] — programs and a label-resolving [`program::ProgramBuilder`].
//! * [`interp`] — a reference interpreter, the golden model the pipeline is
//!   differentially tested against.
//!
//! # Examples
//!
//! Build and run a small program that sums 0..10:
//!
//! ```
//! use rmt_isa::program::ProgramBuilder;
//! use rmt_isa::inst::{Inst, Reg};
//! use rmt_isa::interp::Interpreter;
//! use rmt_isa::mem_image::MemImage;
//!
//! let mut b = ProgramBuilder::new();
//! let (sum, i, limit) = (Reg::new(1), Reg::new(2), Reg::new(3));
//! b.push(Inst::addi(sum, Reg::ZERO, 0));
//! b.push(Inst::addi(i, Reg::ZERO, 0));
//! b.push(Inst::addi(limit, Reg::ZERO, 10));
//! b.label("loop");
//! b.push(Inst::add(sum, sum, i));
//! b.push(Inst::addi(i, i, 1));
//! b.push_branch(Inst::blt(i, limit, 0), "loop");
//! b.push(Inst::halt());
//! let program = b.build().unwrap();
//!
//! let mut interp = Interpreter::new(&program, MemImage::new());
//! interp.run(1_000).unwrap();
//! assert_eq!(interp.state().reg(sum), 45);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod exec;
pub mod inst;
pub mod interp;
pub mod mem_image;
pub mod program;

pub use exec::{execute, ExecOutcome};
pub use inst::{FuClass, Inst, Op, Reg};
pub use mem_image::MemImage;
pub use program::{Program, ProgramBuilder};
