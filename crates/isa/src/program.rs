//! Programs and the label-resolving program builder.
//!
//! A [`Program`] is the read-only instruction space of one logical thread.
//! As in the paper (§2.1), the instruction space is assumed read-only, so
//! both threads of a redundant pair fetch identical instruction values given
//! identical PCs, and no input replication is needed for fetch.

use crate::inst::{Inst, Op};
use std::collections::HashMap;
use std::fmt;

/// An immutable program: instructions at 4-byte PCs starting from 0.
///
/// # Examples
///
/// ```
/// use rmt_isa::{Program, Inst, Reg};
///
/// let p = Program::from_insts(vec![Inst::addi(Reg::new(1), Reg::ZERO, 7), Inst::halt()]);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.fetch(4).unwrap().op, rmt_isa::Op::Halt);
/// assert!(p.fetch(8).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Wraps a vector of instructions as a program.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Program { insts }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetches the instruction at byte address `pc` (must be 4-aligned).
    /// Returns `None` past the end of the program or for unaligned PCs.
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        if !pc.is_multiple_of(4) {
            return None;
        }
        self.insts.get((pc / 4) as usize)
    }

    /// All instructions, in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The byte address one past the last instruction.
    pub fn end_pc(&self) -> u64 {
        self.insts.len() as u64 * 4
    }
}

/// Errors from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Program`] with symbolic branch targets.
///
/// # Examples
///
/// ```
/// use rmt_isa::{ProgramBuilder, Inst, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.label("top");
/// b.push(Inst::addi(Reg::new(1), Reg::new(1), 1));
/// b.push_branch(Inst::j(0), "top"); // infinite loop
/// let p = b.build().unwrap();
/// assert_eq!(p.fetch(4).unwrap().imm, 0); // `top` is PC 0
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: HashMap<String, u64>,
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The PC the next pushed instruction will occupy.
    pub fn here(&self) -> u64 {
        self.insts.len() as u64 * 4
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Defines `name` at the current PC.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.here()).is_some() {
            self.duplicate.get_or_insert(name);
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Appends a control instruction whose `imm` will be patched to the
    /// address of `target` at build time.
    pub fn push_branch(&mut self, inst: Inst, target: impl Into<String>) {
        debug_assert!(inst.op.is_control(), "push_branch requires a control op");
        self.fixups.push((self.insts.len(), target.into()));
        self.insts.push(inst);
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if a referenced label is undefined or a label
    /// was defined twice.
    pub fn build(mut self) -> Result<Program, BuildError> {
        if let Some(dup) = self.duplicate {
            return Err(BuildError::DuplicateLabel(dup));
        }
        for (idx, label) in &self.fixups {
            let addr = *self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            self.insts[*idx].imm = addr as i64;
        }
        Ok(Program::from_insts(self.insts))
    }
}

/// Returns `true` if `op` terminates a sequential fetch chunk when taken
/// (used both by the IBOX chunker and the LPQ writer).
pub fn ends_chunk_when_taken(op: Op) -> bool {
    op.is_control()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    #[test]
    fn fetch_by_pc() {
        let p = Program::from_insts(vec![Inst::nop(), Inst::halt()]);
        assert_eq!(p.fetch(0).unwrap().op, Op::Nop);
        assert_eq!(p.fetch(4).unwrap().op, Op::Halt);
        assert!(p.fetch(8).is_none());
        assert!(p.fetch(2).is_none());
        assert_eq!(p.end_pc(), 8);
        assert!(!p.is_empty());
    }

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.label("start");
        b.push(Inst::nop()); // pc 0
        b.push_branch(Inst::j(0), "end"); // pc 4 -> 12
        b.push_branch(Inst::j(0), "start"); // pc 8 -> 0
        b.label("end");
        b.push(Inst::halt()); // pc 12
        let p = b.build().unwrap();
        assert_eq!(p.fetch(4).unwrap().imm, 12);
        assert_eq!(p.fetch(8).unwrap().imm, 0);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.push_branch(Inst::j(0), "nowhere");
        let err = b.build().unwrap_err();
        assert_eq!(err, BuildError::UndefinedLabel("nowhere".into()));
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.push(Inst::nop());
        b.label("x");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn here_advances_with_pushes() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.here(), 0);
        assert!(b.is_empty());
        b.push(Inst::nop());
        assert_eq!(b.here(), 4);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn branch_fixup_preserves_other_fields() {
        let mut b = ProgramBuilder::new();
        b.label("t");
        b.push_branch(Inst::beq(Reg::new(3), Reg::new(4), 999), "t");
        let p = b.build().unwrap();
        let i = p.fetch(0).unwrap();
        assert_eq!(i.rs1, Reg::new(3));
        assert_eq!(i.rs2, Reg::new(4));
        assert_eq!(i.imm, 0);
    }
}
