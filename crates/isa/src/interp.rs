//! Reference interpreter — the golden model.
//!
//! Executes a [`Program`] one instruction at a time with no timing model.
//! The pipeline simulator must produce exactly this architectural state for
//! the same committed instruction count; the integration tests in `/tests`
//! check that invariant differentially.

use crate::exec::{execute, ExecOutcome};
use crate::inst::{Inst, Reg, NUM_ARCH_REGS};
use crate::mem_image::MemImage;
use crate::program::Program;
use std::fmt;

/// Architectural register + PC state of one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; NUM_ARCH_REGS],
    pc: u64,
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState {
            regs: [0; NUM_ARCH_REGS],
            pc: 0,
        }
    }
}

impl ArchState {
    /// Fresh state: all registers zero, PC = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register (`r0` always reads zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// The raw register file (index 0 is the hardwired zero register).
    pub fn regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.regs
    }

    /// Rebuilds a state from a raw register file and PC (checkpoint
    /// restore). Register 0 is forced back to zero.
    pub fn from_parts(regs: [u64; NUM_ARCH_REGS], pc: u64) -> Self {
        let mut s = ArchState { regs, pc };
        s.regs[0] = 0;
        s
    }

    /// A digest of all registers, for cheap state comparison.
    pub fn reg_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &v in &self.regs {
            for i in 0..8 {
                h ^= (v >> (8 * i)) & 0xff;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `Halt` instruction was executed.
    Halted,
    /// The step budget was exhausted before halting.
    BudgetExhausted,
    /// The PC left the program (fell off the end or jumped to a hole).
    PcOutOfRange(u64),
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Halted => write!(f, "halted"),
            StopReason::BudgetExhausted => write!(f, "step budget exhausted"),
            StopReason::PcOutOfRange(pc) => write!(f, "pc {pc:#x} out of range"),
        }
    }
}

/// A record of one committed instruction, used by tests and by the LVQ/
/// store-comparator oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// PC of the committed instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// For stores: `(addr, value, bytes)`.
    pub store: Option<(u64, u64, u64)>,
    /// For loads: `(addr, value, bytes)`.
    pub load: Option<(u64, u64, u64)>,
}

/// The reference interpreter.
///
/// # Examples
///
/// See the crate-level example.
pub struct Interpreter<'p> {
    program: &'p Program,
    state: ArchState,
    mem: MemImage,
    committed: u64,
    halted: bool,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter over `program` with the given initial memory.
    pub fn new(program: &'p Program, mem: MemImage) -> Self {
        Interpreter {
            program,
            state: ArchState::new(),
            mem,
            committed: 0,
            halted: false,
        }
    }

    /// Re-enters a program at a previously captured architectural state
    /// (checkpoint restore): registers/PC from `state`, memory from `mem`,
    /// and the committed-instruction counter continued at `committed` so
    /// sample-point positions stay absolute across restores.
    pub fn resume(program: &'p Program, mem: MemImage, state: ArchState, committed: u64) -> Self {
        Interpreter {
            program,
            state,
            mem,
            committed,
            halted: false,
        }
    }

    /// The architectural register/PC state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The memory image.
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// Consumes the interpreter, returning its memory image.
    pub fn into_mem(self) -> MemImage {
        self.mem
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Whether a `Halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction and returns its commit record.
    ///
    /// # Errors
    ///
    /// Returns [`StopReason::PcOutOfRange`] if the PC does not map to an
    /// instruction, or [`StopReason::Halted`] if the thread already halted.
    pub fn step(&mut self) -> Result<Commit, StopReason> {
        if self.halted {
            return Err(StopReason::Halted);
        }
        let pc = self.state.pc();
        let inst = *self.program.fetch(pc).ok_or(StopReason::PcOutOfRange(pc))?;
        let a = self.state.reg(inst.rs1);
        let b = self.state.reg(inst.rs2);
        let mut commit = Commit {
            pc,
            inst,
            store: None,
            load: None,
        };
        let mut next_pc = pc.wrapping_add(4);
        match execute(&inst, pc, a, b) {
            ExecOutcome::Value(v) => self.state.set_reg(inst.rd, v),
            ExecOutcome::Load { addr, bytes } => {
                let v = self.mem.read(addr, bytes);
                self.state.set_reg(inst.rd, v);
                commit.load = Some((addr, v, bytes));
            }
            ExecOutcome::Store { addr, value, bytes } => {
                self.mem.write(addr, value, bytes);
                commit.store = Some((addr, value, bytes));
            }
            ExecOutcome::Control {
                next_pc: t, link, ..
            } => {
                if let Some(l) = link {
                    self.state.set_reg(inst.rd, l);
                }
                next_pc = t;
            }
            ExecOutcome::MemBar | ExecOutcome::Nop => {}
            ExecOutcome::Halt => {
                self.halted = true;
            }
        }
        self.state.set_pc(next_pc);
        self.committed += 1;
        Ok(commit)
    }

    /// Runs up to `max_steps` instructions.
    ///
    /// Returns the stop reason: [`StopReason::Halted`] on `Halt`,
    /// [`StopReason::BudgetExhausted`] otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`StopReason::PcOutOfRange`] as an error.
    pub fn run(&mut self, max_steps: u64) -> Result<StopReason, StopReason> {
        for _ in 0..max_steps {
            if self.halted {
                return Ok(StopReason::Halted);
            }
            match self.step() {
                Ok(_) => {}
                Err(StopReason::Halted) => return Ok(StopReason::Halted),
                Err(e) => return Err(e),
            }
        }
        Ok(if self.halted {
            StopReason::Halted
        } else {
            StopReason::BudgetExhausted
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::program::ProgramBuilder;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn straight_line_arithmetic() {
        let p = Program::from_insts(vec![
            Inst::addi(r(1), Reg::ZERO, 6),
            Inst::addi(r(2), Reg::ZERO, 7),
            Inst::mul(r(3), r(1), r(2)),
            Inst::halt(),
        ]);
        let mut i = Interpreter::new(&p, MemImage::new());
        let stop = i.run(100).unwrap();
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(i.state().reg(r(3)), 42);
        assert_eq!(i.committed(), 4);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let p = Program::from_insts(vec![
            Inst::addi(r(1), Reg::ZERO, 0x100),
            Inst::addi(r(2), Reg::ZERO, 77),
            Inst::sw(r(2), r(1), 0),
            Inst::lw(r(3), r(1), 0),
            Inst::halt(),
        ]);
        let mut i = Interpreter::new(&p, MemImage::new());
        i.run(100).unwrap();
        assert_eq!(i.state().reg(r(3)), 77);
        assert_eq!(i.mem().read_u64(0x100), 77);
    }

    #[test]
    fn commit_records_loads_and_stores() {
        let p = Program::from_insts(vec![
            Inst::addi(r(1), Reg::ZERO, 8),
            Inst::sw(r(1), Reg::ZERO, 64),
            Inst::lw(r(2), Reg::ZERO, 64),
        ]);
        let mut i = Interpreter::new(&p, MemImage::new());
        i.step().unwrap();
        let s = i.step().unwrap();
        assert_eq!(s.store, Some((64, 8, 8)));
        let l = i.step().unwrap();
        assert_eq!(l.load, Some((64, 8, 8)));
    }

    #[test]
    fn loop_with_branches() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::addi(r(1), Reg::ZERO, 0)); // i = 0
        b.push(Inst::addi(r(2), Reg::ZERO, 5)); // n = 5
        b.label("loop");
        b.push(Inst::addi(r(1), r(1), 1));
        b.push_branch(Inst::blt(r(1), r(2), 0), "loop");
        b.push(Inst::halt());
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, MemImage::new());
        i.run(1000).unwrap();
        assert_eq!(i.state().reg(r(1)), 5);
    }

    #[test]
    fn call_and_return_via_jalr() {
        let mut b = ProgramBuilder::new();
        b.push_branch(Inst::jal(Reg::RA, 0), "func"); // pc 0
        b.push(Inst::halt()); // pc 4 (return target)
        b.label("func");
        b.push(Inst::addi(r(5), Reg::ZERO, 99)); // pc 8
        b.push(Inst::jalr(Reg::ZERO, Reg::RA)); // pc 12 -> return to 4
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, MemImage::new());
        let stop = i.run(100).unwrap();
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(i.state().reg(r(5)), 99);
    }

    #[test]
    fn pc_out_of_range_detected() {
        let p = Program::from_insts(vec![Inst::nop()]);
        let mut i = Interpreter::new(&p, MemImage::new());
        i.step().unwrap();
        assert_eq!(i.step(), Err(StopReason::PcOutOfRange(4)));
    }

    #[test]
    fn budget_exhaustion() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.push_branch(Inst::j(0), "spin");
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p, MemImage::new());
        assert_eq!(i.run(10).unwrap(), StopReason::BudgetExhausted);
        assert_eq!(i.committed(), 10);
    }

    #[test]
    fn halted_interpreter_stays_halted() {
        let p = Program::from_insts(vec![Inst::halt()]);
        let mut i = Interpreter::new(&p, MemImage::new());
        i.step().unwrap();
        assert!(i.is_halted());
        assert_eq!(i.step(), Err(StopReason::Halted));
        assert_eq!(i.run(5).unwrap(), StopReason::Halted);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let p = Program::from_insts(vec![
            Inst::addi(Reg::ZERO, Reg::ZERO, 55),
            Inst::add(r(1), Reg::ZERO, Reg::ZERO),
            Inst::halt(),
        ]);
        let mut i = Interpreter::new(&p, MemImage::new());
        i.run(10).unwrap();
        assert_eq!(i.state().reg(Reg::ZERO), 0);
        assert_eq!(i.state().reg(r(1)), 0);
    }

    #[test]
    fn reg_digest_changes_with_state() {
        let mut s = ArchState::new();
        let d0 = s.reg_digest();
        s.set_reg(r(4), 1);
        assert_ne!(s.reg_digest(), d0);
    }
}
