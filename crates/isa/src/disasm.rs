//! Disassembly: conventional assembly rendering of instructions and whole
//! programs, used by debugging tools and the examples.

use crate::inst::{Inst, Op};
use crate::program::Program;
use std::fmt::Write as _;

/// Renders one instruction in conventional assembly syntax.
///
/// # Examples
///
/// ```
/// use rmt_isa::{disasm, Inst, Reg};
///
/// assert_eq!(disasm::disassemble(&Inst::addi(Reg::new(1), Reg::ZERO, 7)), "addi  r1, r0, 7");
/// assert_eq!(disasm::disassemble(&Inst::lw(Reg::new(2), Reg::new(3), 16)), "lw    r2, 16(r3)");
/// assert_eq!(disasm::disassemble(&Inst::beq(Reg::new(1), Reg::new(2), 64)), "beq   r1, r2, 0x40");
/// ```
pub fn disassemble(inst: &Inst) -> String {
    let (rd, rs1, rs2, imm) = (inst.rd, inst.rs1, inst.rs2, inst.imm);
    let m = |name: &str| format!("{name:<5}");
    use Op::*;
    match inst.op {
        Add | Sub | Mul | Div | Slt | And | Or | Xor | Sll | Srl | Fadd | Fsub | Fmul | Fdiv => {
            let name = format!("{:?}", inst.op).to_lowercase();
            format!("{} {rd}, {rs1}, {rs2}", m(&name))
        }
        Addi | Slti | Andi | Ori | Xori | Slli | Srli => {
            let name = format!("{:?}", inst.op).to_lowercase();
            format!("{} {rd}, {rs1}, {imm}", m(&name))
        }
        Lui => format!("{} {rd}, {imm}", m("lui")),
        Lw => format!("{} {rd}, {imm}({rs1})", m("lw")),
        Lb => format!("{} {rd}, {imm}({rs1})", m("lb")),
        Sw => format!("{} {rs2}, {imm}({rs1})", m("sw")),
        Sb => format!("{} {rs2}, {imm}({rs1})", m("sb")),
        MemBar => "membar".to_string(),
        Beq | Bne | Blt | Bge => {
            let name = format!("{:?}", inst.op).to_lowercase();
            format!("{} {rs1}, {rs2}, {imm:#x}", m(&name))
        }
        J => format!("{} {imm:#x}", m("j")),
        Jal => format!("{} {rd}, {imm:#x}", m("jal")),
        Jalr => format!("{} {rd}, {rs1}", m("jalr")),
        Nop => "nop".to_string(),
        Halt => "halt".to_string(),
    }
}

/// Renders a whole program as an address-annotated listing.
///
/// # Examples
///
/// ```
/// use rmt_isa::{disasm, Inst, Program, Reg};
///
/// let p = Program::from_insts(vec![Inst::nop(), Inst::halt()]);
/// let text = disasm::listing(&p);
/// assert!(text.contains("0x0000:"));
/// assert!(text.contains("halt"));
/// ```
pub fn listing(program: &Program) -> String {
    let mut out = String::new();
    for (i, inst) in program.insts().iter().enumerate() {
        let _ = writeln!(out, "{:#06x}: {}", i * 4, disassemble(inst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Reg, ALL_OPS};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn register_forms() {
        assert_eq!(
            disassemble(&Inst::add(r(1), r(2), r(3))),
            "add   r1, r2, r3"
        );
        assert_eq!(
            disassemble(&Inst::fmul(r(9), r(8), r(7))),
            "fmul  r9, r8, r7"
        );
    }

    #[test]
    fn immediate_forms() {
        assert_eq!(disassemble(&Inst::addi(r(1), r(2), -5)), "addi  r1, r2, -5");
        assert_eq!(disassemble(&Inst::lui(r(4), 16)), "lui   r4, 16");
        assert_eq!(disassemble(&Inst::slli(r(1), r(1), 3)), "slli  r1, r1, 3");
    }

    #[test]
    fn memory_forms_use_displacement_syntax() {
        assert_eq!(disassemble(&Inst::lw(r(1), r(2), 8)), "lw    r1, 8(r2)");
        assert_eq!(disassemble(&Inst::sb(r(3), r(4), -1)), "sb    r3, -1(r4)");
    }

    #[test]
    fn control_forms_use_hex_targets() {
        assert_eq!(disassemble(&Inst::j(256)), "j     0x100");
        assert_eq!(disassemble(&Inst::jal(Reg::RA, 64)), "jal   r63, 0x40");
        assert_eq!(
            disassemble(&Inst::jalr(Reg::ZERO, Reg::RA)),
            "jalr  r0, r63"
        );
        assert_eq!(
            disassemble(&Inst::blt(r(1), r(2), 16)),
            "blt   r1, r2, 0x10"
        );
    }

    #[test]
    fn every_opcode_disassembles_nonempty() {
        for &op in ALL_OPS {
            let inst = Inst::new(op, r(1), r(2), r(3), 4);
            let text = disassemble(&inst);
            assert!(!text.is_empty(), "{op:?}");
            assert!(!text.contains("Debug"), "{op:?} fell through to Debug");
        }
    }

    #[test]
    fn listing_is_line_per_instruction() {
        let p = Program::from_insts(vec![Inst::nop(); 5]);
        let text = listing(&p);
        assert_eq!(text.lines().count(), 5);
        assert!(text.starts_with("0x0000: nop"));
        assert!(text.contains("0x0010: nop"));
    }
}
