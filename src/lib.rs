//! # rmt — Redundant Multithreading Alternatives
//!
//! A from-scratch Rust reproduction of **"Detailed Design and Evaluation of
//! Redundant Multithreading Alternatives"** (Mukherjee, Kontz, Reinhardt —
//! ISCA 2002): transient/permanent fault detection by running two copies of
//! a program as redundant threads and comparing their outputs, on top of a
//! cycle-level model of a commercial-grade (EV8-like) SMT processor.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`isa`] — the instruction set the simulated machine executes.
//! * [`workloads`] — synthetic SPEC CPU95-like benchmark generators.
//! * [`mem`] — caches, merge buffer and DRAM timing.
//! * [`predict`] — line/branch predictors, RAS and store-sets.
//! * [`pipeline`] — the base SMT core (IBOX/PBOX/QBOX/RBOX/EBOX/MBOX).
//! * [`core`] — **the paper's contribution**: SRT, CRT and lockstepping.
//! * [`faults`] — fault injection and coverage campaigns.
//! * [`sample`] — SMARTS-style sampled simulation: checkpoints,
//!   functional fast-forward and sampling plans.
//! * [`sim`] — experiment harness and metric collection.
//! * [`stats`] — counters, histograms, tables, deterministic RNG.
//! * [`verify`] — differential co-simulation oracle and program fuzzer.
//!
//! # Quickstart
//!
//! ```
//! use rmt::sim::{Experiment, DeviceKind};
//! use rmt::workloads::Benchmark;
//!
//! // Run `gcc` redundantly on an SRT processor for a short interval and
//! // check that redundant execution produced the same architectural state.
//! let result = Experiment::new(DeviceKind::Srt)
//!     .benchmark(Benchmark::Gcc)
//!     .warmup(1_000)
//!     .measure(5_000)
//!     .run()
//!     .expect("simulation runs");
//! assert!(result.total_committed() > 0);
//! assert_eq!(result.faults_detected(), 0);
//! ```

pub use rmt_core as core;
pub use rmt_faults as faults;
pub use rmt_isa as isa;
pub use rmt_mem as mem;
pub use rmt_pipeline as pipeline;
pub use rmt_predict as predict;
pub use rmt_sample as sample;
pub use rmt_sim as sim;
pub use rmt_stats as stats;
pub use rmt_verify as verify;
pub use rmt_workloads as workloads;
