#!/usr/bin/env bash
# Tier-1 verification gate plus lint, smoke and JSON-schema checks.
# Fully offline: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d -t rmt_ci.XXXXXX)"
serve_pid=""
trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$tmpdir"' EXIT

# Per-section wall-clock: `section NAME` closes the previous section with
# its elapsed time, so a CI time regression is attributable to a stage
# instead of hiding in the total.
_section=""
_section_start=$SECONDS
section() {
    local now=$SECONDS
    if [ -n "$_section" ]; then
        echo "  [section '${_section}' took $((now - _section_start))s]"
    fi
    _section="$1"
    _section_start=$now
    echo "== $1 =="
}

section "lint: rustfmt"
cargo fmt --check

section "lint: clippy"
cargo clippy --all-targets -- -D warnings

section "lint: file size (src/*.rs <= 700 lines)"
# Monoliths like the old 1257-line figures.rs must not silently regrow.
# No allowlist: every source file obeys the gate; split before exceeding.
oversize=0
while IFS= read -r f; do
    lines=$(wc -l < "$f")
    if [ "$lines" -gt 700 ]; then
        echo "error: $f has $lines lines (limit 700); split it" >&2
        oversize=1
    fi
done < <(find crates src -name '*.rs' -path '*/src/*' 2>/dev/null | sort)
[ "$oversize" -eq 0 ]

section "tier-1: build"
cargo build --release

section "tier-1: tests"
cargo test -q

section "smoke: parallel figure run (quick scale, 2 workers)"
cargo run --release -p rmt-bench --bin fig6_srt_single -- --scale quick --jobs 2

section "smoke: sampled figure run (quick scale, 2 workers)"
# The sampled path exercises checkpointing, functional fast-forward and
# warm replay end to end; a blow-up in any of them shows first as runtime.
sample_start=$SECONDS
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --scale quick --jobs 2 --sample
sample_elapsed=$((SECONDS - sample_start))
echo "  [sampled smoke took ${sample_elapsed}s; budget 120s]"
if [ "$sample_elapsed" -gt 120 ]; then
    echo "error: sampled smoke exceeded its 120s wall-clock budget" >&2
    exit 1
fi

section "smoke: machine-readable results (--json round trip)"
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --scale quick --jobs 2 --benches m88ksim,ijpeg --json "$tmpdir/fig6.json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- "$tmpdir/fig6.json"

section "smoke: declarative sensitivity sweep (quick scale)"
cargo run --release -p rmt-bench --bin sweep -- sweeps/slack_sq.json \
    --scale quick --jobs 2 --json "$tmpdir/sweep.json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- "$tmpdir/sweep.json"

section "tests: rmt-serve parser fuzz + daemon end-to-end suites"
# The serving crates live below the root package, so the tier-1
# `cargo test -q` above does not reach them; run them explicitly.
cargo test --release -q -p rmt-serve

section "smoke: rmt-serve round trip (miss simulates, repeat hits cache)"
# An ephemeral-port daemon driven through real sockets: the first
# submission simulates, the resubmission must be answered from the
# cache, and both payloads must be bitwise identical — to each other and
# to the figure binary's cell for the same machine.
cargo build --release -p rmt-serve
./target/release/rmt-serve --addr 127.0.0.1:0 \
    --cache-dir "$tmpdir/serve-cache" --addr-file "$tmpdir/serve-addr" &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$tmpdir/serve-addr" ] && break; sleep 0.1; done
serve_addr="$(cat "$tmpdir/serve-addr")"
./target/release/rmtc --server "$serve_addr" submit requests/fig6_cell.json \
    --wait --result-out "$tmpdir/served1.json" --expect-miss
./target/release/rmtc --server "$serve_addr" submit requests/fig6_cell.json \
    --out "$tmpdir/hit_env.json" --result-out "$tmpdir/served2.json" --expect-hit
cmp "$tmpdir/served1.json" "$tmpdir/served2.json"
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --quick --benches m88ksim --json "$tmpdir/fig6_cell.json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- \
    --serve-cell "$tmpdir/fig6_cell.json" m88ksim/SRT "$tmpdir/served1.json"
cargo run --release -p rmt-bench --bin check_json -- \
    --compare results/serve_roundtrip.json "$tmpdir/hit_env.json"
./target/release/rmtc --server "$serve_addr" shutdown > /dev/null
wait "$serve_pid"
serve_pid=""

section "tests: rmt-cluster merge property + chaos end-to-end suites"
# Like the serving crates, rmt-cluster sits below the root package and
# needs an explicit test invocation.
cargo test --release -q -p rmt-cluster

section "smoke: rmt-cluster 2-worker sweep is bitwise identical to one process"
# The distributed-determinism contract, end to end over real processes:
# the same declarative sweep through a self-spawned 2-worker fleet must
# produce the byte-for-byte document of a single-process run (`cmp`),
# the full envelope must validate (every cell digest recomputes from its
# echoed request), and `check_json --compare` must agree — it ignores
# only `host` and `cluster`, the legitimately machine-varying sections.
cargo build --release -p rmt-cluster
./target/release/rmt-cluster sweeps/slack_sq.json --local --quick \
    --result-out "$tmpdir/cluster_local.json" > /dev/null
if ! ./target/release/rmt-cluster sweeps/slack_sq.json --spawn 2 --quick \
    --spawn-dir "$tmpdir/fleet2" --out "$tmpdir/cluster_env.json" \
    --result-out "$tmpdir/cluster2.json" > /dev/null; then
    echo "error: 2-worker cluster run failed; worker log tails:" >&2
    tail -n 20 "$tmpdir"/fleet2/*.log >&2 || true
    exit 1
fi
cmp "$tmpdir/cluster_local.json" "$tmpdir/cluster2.json"
cargo run --release -p rmt-bench --bin check_json -- "$tmpdir/cluster_env.json"
cargo run --release -p rmt-bench --bin check_json -- \
    --compare "$tmpdir/cluster_local.json" "$tmpdir/cluster2.json"

section "smoke: chaos — 3-worker fleet loses one mid-sweep, still bitwise"
# One worker is SIGKILLed (deterministic victim, default --chaos-seed)
# once a quarter of the cells are done; retry/steal must finish the grid
# on the survivors and the merged bytes must not change.
if ! ./target/release/rmt-cluster sweeps/slack_sq.json --spawn 3 \
    --chaos-kill 1 --quick --spawn-dir "$tmpdir/fleet3" \
    --result-out "$tmpdir/cluster3.json" > /dev/null; then
    echo "error: chaos cluster run failed; worker log tails:" >&2
    tail -n 20 "$tmpdir"/fleet3/*.log >&2 || true
    exit 1
fi
cmp "$tmpdir/cluster_local.json" "$tmpdir/cluster3.json"

section "smoke: --set override is bitwise equivalent to a code tweak"
# The dotted key-path override system must steer the machine exactly like
# the closure-tweak API it fronts (same run, same digests). The test
# builds both experiments and compares cycles + encoded metrics bitwise.
cargo test --release -q -p rmt-sim set_override_matches_tweak_core

section "schema: every committed figure document carries a valid config"
# check_json strictly validates the embedded MachineSpec (all six
# sections, no unknown keys) on every committed golden.
cargo run --release -p rmt-bench --bin check_json -- \
    results/fig6_srt_single.json results/fig6_epoch.json \
    results/fault_forensics.json results/sampling_validation.json \
    results/sensitivity_slack_sq.json results/serve_roundtrip.json \
    BENCH_PR2.json BENCH_PR8.json BENCH_PR9.json BENCH_PR10.json

section "golden: committed results must regenerate bitwise (sans host)"
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --scale standard --json "$tmpdir/fig6_golden.json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- \
    --compare results/fig6_srt_single.json "$tmpdir/fig6_golden.json"
cargo run --release -p rmt-bench --bin aggregate -- \
    --scale standard --json "$tmpdir/agg_golden.json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- \
    --compare BENCH_PR2.json "$tmpdir/agg_golden.json"

section "golden: epoch time-series telemetry must regenerate bitwise"
# `--epoch` sampling is keyed to the simulated cycle, so the per-epoch
# deltas are part of the determinism contract like everything else.
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --quick --benches m88ksim,ijpeg --epoch 4096 \
    --json "$tmpdir/fig6_epoch.json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- \
    --compare results/fig6_epoch.json "$tmpdir/fig6_epoch.json"

section "golden: fault forensics must regenerate bitwise (sans host)"
cargo run --release -p rmt-bench --bin fault_forensics -- \
    --standard --json "$tmpdir/forensics.json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- \
    --compare results/fault_forensics.json "$tmpdir/forensics.json"

section "golden: fault-coverage table must regenerate bitwise (sans timing)"
cargo run --release -p rmt-bench --bin fault_coverage -- --standard \
    | grep -v '^  \[' > "$tmpdir/fault_coverage.txt"
if ! diff -u results/fault_coverage.txt "$tmpdir/fault_coverage.txt"; then
    echo "error: results/fault_coverage.txt is stale; regenerate with:" >&2
    echo "  cargo run --release -p rmt-bench --bin fault_coverage -- --standard | grep -v '^  \[' > results/fault_coverage.txt" >&2
    exit 1
fi

section "smoke: HTML report renders the committed artifacts"
cargo run --release -p rmt-bench --bin report -- --out "$tmpdir/report.html" \
    results/fig6_srt_single.json results/fig6_epoch.json \
    results/fault_forensics.json "$tmpdir/cluster_env.json" BENCH_PR10.json
[ -s "$tmpdir/report.html" ] || { echo "error: report is empty" >&2; exit 1; }
grep -q '</html>' "$tmpdir/report.html"
grep -q '<svg' "$tmpdir/report.html"
grep -q 'Per-worker dispatch' "$tmpdir/report.html"

section "verify: differential fuzz smoke (fixed seed block, ~60s budget)"
# A fixed, deterministic seed block through the co-simulation oracle on
# the two arrangements with the richest commit plumbing. Any divergence
# exits nonzero and prints a minimized reproducer to save under
# tests/corpus/ (which tests/fuzz_regressions.rs then replays forever).
cargo run --release -p rmt-bench --bin fuzz -- \
    --seeds 0..48 --arrangement srt --commits 2000 --budget-secs 45
cargo run --release -p rmt-bench --bin fuzz -- \
    --seeds 0..16 --arrangement all --commits 1000 --budget-secs 15

section "ci.sh: all checks passed"
