#!/usr/bin/env bash
# Tier-1 verification gate plus lint, smoke and JSON-schema checks.
# Fully offline: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: rustfmt =="
cargo fmt --check

echo "== lint: clippy =="
cargo clippy --all-targets -- -D warnings

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== smoke: parallel figure run (quick scale, 2 workers) =="
cargo run --release -p rmt-bench --bin fig6_srt_single -- --scale quick --jobs 2

echo "== smoke: machine-readable results (--json round trip) =="
tmp_json="$(mktemp -t rmt_ci_fig6.XXXXXX.json)"
trap 'rm -f "$tmp_json"' EXIT
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --scale quick --jobs 2 --benches m88ksim,ijpeg --json "$tmp_json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- "$tmp_json"

echo "== ci.sh: all checks passed =="
