#!/usr/bin/env bash
# Tier-1 verification gate plus lint, smoke and JSON-schema checks.
# Fully offline: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: rustfmt =="
cargo fmt --check

echo "== lint: clippy =="
cargo clippy --all-targets -- -D warnings

echo "== lint: file size (src/*.rs <= 700 lines) =="
# Monoliths like the old 1257-line figures.rs must not silently regrow.
# Allowlisted files are the two that legitimately exceed the gate today;
# shrink them before extending this list.
allowlist=(
    "crates/pipeline/src/backend.rs"
    "crates/pipeline/src/core.rs"
)
oversize=0
while IFS= read -r f; do
    lines=$(wc -l < "$f")
    if [ "$lines" -gt 700 ]; then
        skip=""
        for a in "${allowlist[@]}"; do
            [ "$f" = "$a" ] && skip=1
        done
        if [ -z "$skip" ]; then
            echo "error: $f has $lines lines (limit 700); split it or allowlist it" >&2
            oversize=1
        fi
    fi
done < <(find crates src -name '*.rs' -path '*/src/*' 2>/dev/null | sort)
[ "$oversize" -eq 0 ]

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== smoke: parallel figure run (quick scale, 2 workers) =="
cargo run --release -p rmt-bench --bin fig6_srt_single -- --scale quick --jobs 2

echo "== smoke: sampled figure run (quick scale, 2 workers) =="
# The sampled path exercises checkpointing, functional fast-forward and
# warm replay end to end; a blow-up in any of them shows first as runtime.
sample_start=$SECONDS
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --scale quick --jobs 2 --sample
sample_elapsed=$((SECONDS - sample_start))
echo "  [sampled smoke took ${sample_elapsed}s; budget 120s]"
if [ "$sample_elapsed" -gt 120 ]; then
    echo "error: sampled smoke exceeded its 120s wall-clock budget" >&2
    exit 1
fi

echo "== smoke: machine-readable results (--json round trip) =="
tmp_json="$(mktemp -t rmt_ci_fig6.XXXXXX.json)"
tmp_fig6="$(mktemp -t rmt_ci_fig6_golden.XXXXXX.json)"
tmp_agg="$(mktemp -t rmt_ci_agg_golden.XXXXXX.json)"
trap 'rm -f "$tmp_json" "$tmp_fig6" "$tmp_agg"' EXIT
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --scale quick --jobs 2 --benches m88ksim,ijpeg --json "$tmp_json" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- "$tmp_json"

echo "== golden: committed results must regenerate bitwise (sans host) =="
cargo run --release -p rmt-bench --bin fig6_srt_single -- \
    --scale standard --json "$tmp_fig6" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- \
    --compare results/fig6_srt_single.json "$tmp_fig6"
cargo run --release -p rmt-bench --bin aggregate -- \
    --scale standard --json "$tmp_agg" > /dev/null
cargo run --release -p rmt-bench --bin check_json -- \
    --compare BENCH_PR2.json "$tmp_agg"

echo "== golden: fault-coverage table must regenerate bitwise (sans timing) =="
tmp_fc="$(mktemp -t rmt_ci_fault_coverage.XXXXXX.txt)"
trap 'rm -f "$tmp_json" "$tmp_fig6" "$tmp_agg" "$tmp_fc"' EXIT
cargo run --release -p rmt-bench --bin fault_coverage -- --standard \
    | grep -v '^  \[' > "$tmp_fc"
if ! diff -u results/fault_coverage.txt "$tmp_fc"; then
    echo "error: results/fault_coverage.txt is stale; regenerate with:" >&2
    echo "  cargo run --release -p rmt-bench --bin fault_coverage -- --standard | grep -v '^  \[' > results/fault_coverage.txt" >&2
    exit 1
fi

echo "== verify: differential fuzz smoke (fixed seed block, ~60s budget) =="
# A fixed, deterministic seed block through the co-simulation oracle on
# the two arrangements with the richest commit plumbing. Any divergence
# exits nonzero and prints a minimized reproducer to save under
# tests/corpus/ (which tests/fuzz_regressions.rs then replays forever).
cargo run --release -p rmt-bench --bin fuzz -- \
    --seeds 0..48 --arrangement srt --commits 2000 --budget-secs 45
cargo run --release -p rmt-bench --bin fuzz -- \
    --seeds 0..16 --arrangement all --commits 1000 --budget-secs 15

echo "== ci.sh: all checks passed =="
