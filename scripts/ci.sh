#!/usr/bin/env bash
# Tier-1 verification gate plus a parallel-runner smoke test.
# Fully offline: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== smoke: parallel figure run (quick scale, 2 workers) =="
cargo run --release -p rmt-bench --bin fig6_srt_single -- --scale quick --jobs 2

echo "== ci.sh: all checks passed =="
