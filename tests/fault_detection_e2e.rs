//! End-to-end fault-detection scenarios across the three architectures.

use rmt::core::crt::CrtDevice;
use rmt::core::device::{Device, LogicalThread, SrtOptions};
use rmt::core::lockstep::{LockstepDevice, LockstepOptions};
use rmt::faults::{run_base_campaign, run_srt_campaign, CampaignConfig, FaultKind};
use rmt::pipeline::CoreConfig;
use rmt::workloads::{Benchmark, Workload};

fn cfg(n: usize) -> CampaignConfig {
    CampaignConfig {
        injections: n,
        warmup_commits: 1_000,
        window_commits: 8_000,
        seed: 0xabcd,
    }
}

#[test]
fn the_problem_base_machines_corrupt_silently() {
    // Stream-heavy workloads carry a corrupted store to the next sweep;
    // RMW-heavy ones can overwrite it within a few hundred instructions.
    let w = Workload::generate(Benchmark::Swim, 1);
    let r = run_base_campaign(CoreConfig::base(), &w, FaultKind::TransientSq, cfg(5));
    assert_eq!(r.detected, 0);
    assert!(
        r.silent >= 4,
        "committed store corruption must reach memory: {r:?}"
    );
}

#[test]
fn the_fix_srt_detects_the_same_faults() {
    let w = Workload::generate(Benchmark::Swim, 1);
    let r = run_srt_campaign(SrtOptions::default(), &w, FaultKind::TransientSq, cfg(5));
    assert!(r.detected >= 4, "detected only {} of 5", r.detected);
    assert_eq!(r.silent, 0, "SRT must not leak corrupted stores");
    assert!(r.mean_latency() < 5_000.0, "detection should be prompt");
}

#[test]
fn srt_register_strikes_never_escape() {
    let w = Workload::generate(Benchmark::Gcc, 4);
    let r = run_srt_campaign(SrtOptions::default(), &w, FaultKind::TransientReg, cfg(8));
    assert_eq!(r.silent, 0, "register strike escaped the sphere");
    // Many strikes hit dead values (masking) — that is expected and
    // mirrors architectural vulnerability derating.
    assert_eq!(r.detected + r.masked, 8);
}

#[test]
fn lvq_corruption_is_caught_downstream() {
    // The paper requires ECC on the LVQ (§2.1); without it, a corrupted
    // entry sends the trailing thread down a divergent data path, which
    // the store comparator then flags.
    let w = Workload::generate(Benchmark::Swim, 2);
    let r = run_srt_campaign(SrtOptions::default(), &w, FaultKind::TransientLvq, cfg(5));
    assert_eq!(r.silent, 0);
    assert!(
        r.detected >= 1,
        "at least some LVQ corruption must propagate to a store"
    );
}

#[test]
fn permanent_fault_detected_quickly_with_psr() {
    let w = Workload::generate(Benchmark::M88ksim, 1);
    let mut psr = SrtOptions::default();
    psr.core.preferential_space_redundancy = true;
    let r = run_srt_campaign(psr, &w, FaultKind::PermanentFu, cfg(6));
    assert!(r.detected >= 3, "PSR should detect stuck-at FUs: {r:?}");
    assert_eq!(r.silent, 0);
}

#[test]
fn crt_detects_cross_core_divergence() {
    let w = Workload::generate(Benchmark::Ijpeg, 3);
    let mut dev = CrtDevice::new(CrtDevice::default_options(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(2_000, 5_000_000));
    dev.drain_detected_faults();
    // Stuck-at fault on the *leading* core only: the trailing core's
    // computation diverges and the comparator flags it.
    let p = dev.placement(0);
    dev.core_mut(p.lead_core).set_fu_stuck(2, 4, true);
    let target = dev.committed(0) + 20_000;
    let mut detected = false;
    while dev.committed(0) < target {
        dev.tick();
        if !dev.drain_detected_faults().is_empty() {
            detected = true;
            break;
        }
    }
    assert!(detected, "CRT missed a permanent cross-core divergence");
}

#[test]
fn lockstep_checker_catches_single_core_upsets() {
    let w = Workload::generate(Benchmark::Compress, 5);
    let mut dev = LockstepDevice::new(LockstepOptions::lock0(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(2_000, 5_000_000));
    dev.drain_detected_faults();
    dev.core_mut(1).arm_sq_strike(0, 1 << 9);
    let target = dev.committed(0) + 20_000;
    let mut detected = false;
    while dev.committed(0) < target {
        dev.tick();
        if !dev.drain_detected_faults().is_empty() {
            detected = true;
            break;
        }
    }
    assert!(detected, "lockstep checker missed a store corruption");
}

#[test]
fn lvq_ecc_absorbs_strikes_entirely() {
    // With the paper-mandated ECC on the LVQ (§2.1), the same strikes that
    // otherwise propagate to the store comparator are corrected in place:
    // every injection masks and the machine never even raises a detection.
    let w = Workload::generate(Benchmark::Swim, 2);
    let mut opts = SrtOptions::default();
    opts.env.lvq_ecc = true;
    let r = run_srt_campaign(opts, &w, FaultKind::TransientLvq, cfg(5));
    assert_eq!(r.detected, 0, "ECC should leave nothing to detect");
    assert_eq!(r.silent, 0);
    assert_eq!(r.masked, 5);
}
