//! Refactor guard: every [`rmt_sim::DeviceKind`], constructed through the
//! one experiment factory, must reproduce the committed golden records
//! bitwise — measured cycles, per-thread outcomes, fault counts and the
//! FNV digest of the full metric snapshot.
//!
//! The golden (`results/refactor_guard_quick.json`) was captured from the
//! pre-fabric device layer, so this test proves the Machine/
//! RedundancyScheme refactor is behaviourally neutral at `--quick` scale.
//! Regenerate deliberately with the `guard_golden` binary.

use rmt_sim::guard::{guard_points, parse_golden, run_point, run_standard_point, standard_points};

#[test]
fn every_device_kind_matches_the_committed_golden() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/refactor_guard_quick.json"
    ))
    .expect("read committed golden");
    let doc = rmt_stats::json::parse(&text).expect("golden parses");
    let golden = parse_golden(&doc).expect("golden is well-formed");
    let points = guard_points();
    assert_eq!(
        golden.len(),
        points.len(),
        "golden entry count must match guard points; regenerate with guard_golden"
    );
    let mut failures = Vec::new();
    for expected in &golden {
        let point = points
            .iter()
            .find(|p| p.name == expected.name)
            .unwrap_or_else(|| panic!("golden entry {} has no guard point", expected.name));
        let got = run_point(point);
        if got != *expected {
            failures.push(format!(
                "{}: got cycles={} faults={} fnv={:#018x}, golden cycles={} faults={} fnv={:#018x}",
                expected.name,
                got.cycles,
                got.faults,
                got.metrics_fnv,
                expected.cycles,
                expected.faults,
                expected.metrics_fnv
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "refactor guard drift:\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_device_kind_verifies_at_standard_scale() {
    // One full `--standard` cell per kind, replayed bitwise against
    // `results/refactor_guard_standard.json` *with the co-simulation
    // oracle attached*: `run_standard_point` panics on the first commit
    // that disagrees with the reference interpreter, so a green run is
    // both a drift guard and a proof that every kind's standard-scale
    // commit stream is divergence-free end to end.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/refactor_guard_standard.json"
    ))
    .expect("read committed standard golden");
    let doc = rmt_stats::json::parse(&text).expect("golden parses");
    let golden = parse_golden(&doc).expect("golden is well-formed");
    let points = standard_points();
    assert_eq!(
        golden.len(),
        points.len(),
        "golden entry count must match standard points; regenerate with guard_golden --standard"
    );
    let mut failures = Vec::new();
    for (expected, point) in golden.iter().zip(&points) {
        assert_eq!(expected.name, point.name, "golden order drifted");
        let (got, checked) = run_standard_point(point);
        let need = rmt_sim::guard::STANDARD_WARMUP + rmt_sim::guard::STANDARD_MEASURE;
        assert!(
            checked >= need,
            "{}: oracle checked only {checked} of {need} commits",
            point.name
        );
        if got != *expected {
            failures.push(format!(
                "{}: got cycles={} fnv={:#018x}, golden cycles={} fnv={:#018x}",
                expected.name, got.cycles, got.metrics_fnv, expected.cycles, expected.metrics_fnv
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "standard refactor guard drift:\n{}",
        failures.join("\n")
    );
}
