//! Targeted tests for the paper's §4.3/§4.4.2 deadlock cases.
//!
//! The SRT design deadlocks without two chunk-termination rules: a memory
//! barrier cannot retire until older stores drain, but an unverified store
//! cannot drain until its trailing copy executes, and the trailing copy
//! cannot fetch until the line prediction queue's open chunk terminates.
//! The same loop exists through a partial-forwarding load. These tests
//! build the exact pathological instruction sequences; the core's
//! no-retirement watchdog turns any regression into a panic.

use rmt::core::device::{Device, LogicalThread, SrtDevice, SrtOptions};
use rmt::isa::inst::{Inst, Reg};
use rmt::isa::program::ProgramBuilder;
use rmt::isa::MemImage;
use std::rc::Rc;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// store → membar, packed into one fetch chunk, forever.
fn membar_heavy_program() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    b.push(Inst::lui(r(1), 16)); // base = 1 MB
    b.push(Inst::addi(r(2), Reg::ZERO, 0));
    b.label("loop");
    // Store and barrier in the same chunk: without forced termination the
    // open LPQ chunk never closes and the machine wedges (§4.4.2).
    b.push(Inst::sw(r(2), r(1), 0));
    b.push(Inst::membar());
    b.push(Inst::addi(r(2), r(2), 1));
    b.push_branch(Inst::j(0), "loop");
    b
}

/// byte store → word load of the same location in the same chunk, forever.
fn partial_forward_program() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    b.push(Inst::lui(r(1), 16));
    b.push(Inst::addi(r(2), Reg::ZERO, 0x5a));
    b.label("loop");
    b.push(Inst::sb(r(2), r(1), 0));
    // The word load partially overlaps the byte store: the base processor
    // stalls the load until the store drains; in SRT the store cannot
    // drain until the trailing copy is fetched (§4.4.2's second rule).
    b.push(Inst::lw(r(3), r(1), 0));
    b.push(Inst::addi(r(2), r(2), 1));
    b.push(Inst::andi(r(2), r(2), 0xff));
    b.push_branch(Inst::j(0), "loop");
    b
}

fn run_srt(b: ProgramBuilder, commits: u64) -> SrtDevice {
    let program = Rc::new(b.build().unwrap());
    let mut dev = SrtDevice::new(
        SrtOptions::default(),
        vec![LogicalThread::new(program, MemImage::new())],
    );
    // The watchdog inside the core panics on 100k retire-free cycles, so
    // reaching the commit target proves liveness.
    assert!(
        dev.run_until_committed(commits, 50_000_000),
        "SRT did not reach {commits} commits"
    );
    dev
}

#[test]
fn membar_in_chunk_does_not_deadlock_srt() {
    let dev = run_srt(membar_heavy_program(), 20_000);
    assert!(
        dev.core().stats().get("membar_waits") > 0,
        "barrier never waited"
    );
    assert_eq!(dev.env().pair(0).comparator.mismatches(), 0);
}

#[test]
fn partial_forward_in_chunk_does_not_deadlock_srt() {
    let dev = run_srt(partial_forward_program(), 20_000);
    assert!(
        dev.core().stats().get("partial_forward_stalls") > 0,
        "the pathological pattern never exercised partial forwarding"
    );
    assert_eq!(dev.env().pair(0).comparator.mismatches(), 0);
}

#[test]
fn combined_pathologies_under_four_contexts() {
    // Both deadlock-prone programs as two redundant pairs at once: the
    // §4.3 per-thread reservations must keep all four contexts live.
    let a = Rc::new(membar_heavy_program().build().unwrap());
    let b = Rc::new(partial_forward_program().build().unwrap());
    let mut dev = SrtDevice::new(
        SrtOptions::default(),
        vec![
            LogicalThread::new(a, MemImage::new()),
            LogicalThread::new(b, MemImage::new()),
        ],
    );
    assert!(dev.run_until_committed(10_000, 50_000_000));
    for i in 0..2 {
        assert_eq!(dev.env().pair(i).comparator.mismatches(), 0, "pair {i}");
    }
}

#[test]
fn store_release_delay_throttles_but_preserves_liveness() {
    // The lockstep checker's store-path delay must never wedge the machine,
    // even combined with memory barriers.
    use rmt::core::lockstep::{LockstepDevice, LockstepOptions};
    let program = Rc::new(membar_heavy_program().build().unwrap());
    let mut opts = LockstepOptions::lock8();
    opts.checker_latency = 32; // far worse than Lock8
    let mut dev = LockstepDevice::new(opts, vec![LogicalThread::new(program, MemImage::new())]);
    assert!(dev.run_until_committed(10_000, 50_000_000));
    assert!(!dev.desynced());
}

#[test]
fn uncached_polling_does_not_deadlock_srt() {
    // Device-register polling: store + uncached load of the same location
    // in one chunk. Uncached loads wait for the store queue to drain; in
    // SRT the drain needs the trailing copy, closing the same loop as the
    // partial-forwarding case.
    let mut b = ProgramBuilder::new();
    b.push(Inst::addi(r(1), Reg::ZERO, 0x100)); // device address (uncached)
    b.push(Inst::addi(r(2), Reg::ZERO, 0));
    b.label("loop");
    b.push(Inst::sw(r(2), r(1), 0));
    b.push(Inst::lw(r(3), r(1), 0)); // uncached, non-speculative
    b.push(Inst::addi(r(2), r(3), 1));
    b.push_branch(Inst::j(0), "loop");
    let dev = run_srt(b, 5_000);
    assert!(dev.core().stats().get("uncached_loads") > 100);
    assert!(dev.core().stats().get("uncached_load_waits") > 0);
    assert_eq!(dev.env().pair(0).comparator.mismatches(), 0);
}

#[test]
fn uncached_loads_see_drained_stores_exactly() {
    // Correctness: the polled value must round-trip exactly (the load
    // bypasses store-queue forwarding, so ordering discipline is the only
    // thing keeping it right).
    use rmt::core::device::BaseDevice;
    use rmt::pipeline::CoreConfig;
    let mut b = ProgramBuilder::new();
    b.push(Inst::addi(r(1), Reg::ZERO, 0x100));
    b.push(Inst::addi(r(2), Reg::ZERO, 0));
    b.push(Inst::addi(r(4), Reg::ZERO, 200));
    b.label("loop");
    b.push(Inst::sw(r(2), r(1), 0));
    b.push(Inst::lw(r(3), r(1), 0));
    b.push(Inst::addi(r(2), r(3), 1));
    b.push_branch(Inst::blt(r(2), r(4), 0), "loop");
    b.push(Inst::halt());
    let program = Rc::new(b.build().unwrap());
    let mut dev = BaseDevice::new(
        CoreConfig::base(),
        Default::default(),
        vec![LogicalThread::new(program, MemImage::new())],
    );
    let mut guard = 0;
    while !(dev.core().all_halted() && dev.core().in_flight(0) == 0) {
        dev.tick();
        guard += 1;
        assert!(guard < 2_000_000, "stuck");
    }
    assert_eq!(dev.core().arch_reg(0, r(2)), 200);
}
