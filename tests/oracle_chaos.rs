//! The oracle must catch a real architectural bug.
//!
//! The `chaos` feature (enabled for this workspace's tests, default-off
//! at runtime) plants a classic partial-masking bug in the pipeline:
//! with `CoreConfig::chaos_lb_unmasked` set, cached `Lb` loads read a
//! full 8-byte word instead of one byte. Both copies of a redundant pair
//! load the same wrong value, so the fabric's own comparators (store
//! comparator, LVQ address check, lockstep checker) are structurally
//! blind to it — the differential oracle is the only detector. This test
//! proves the fuzz-find-shrink loop turns the bug into a minimized
//! reproducer.

use rmt::pipeline::CoreConfig;
use rmt::verify::{fuzz::FuzzConfig, harness, Arrangement, DivergenceKind};

#[test]
fn planted_lb_masking_bug_is_caught_and_shrunk() {
    let mut core = CoreConfig::base();
    core.chaos_lb_unmasked = true;
    let cfg = FuzzConfig::default();

    // Deterministic seed scan: the bug needs an `lb` that reads bytes a
    // wider store previously wrote, so not every seed trips it.
    let finding = (0..32)
        .find_map(|seed| harness::fuzz_one(Arrangement::Srt, core.clone(), &cfg, seed, 2_000))
        .expect("the planted bug must be found within the seed block");

    // The divergence is the load (or the value it fed a register).
    assert!(
        matches!(
            finding.divergence.kind,
            DivergenceKind::Load { .. } | DivergenceKind::RegWrite { .. }
        ),
        "unexpected divergence kind: {}",
        finding.divergence
    );
    // The minimized reproducer keeps the faulting `lb` and at most a
    // handful of supporting instructions.
    let live = rmt::verify::shrink::live_insts(&finding.shrunk);
    assert!(
        finding
            .shrunk
            .insts()
            .iter()
            .any(|i| i.op == rmt::isa::Op::Lb),
        "minimized reproducer lost the faulting lb:\n{}",
        rmt::verify::shrink::to_asm(&finding.shrunk)
    );
    assert!(
        live <= 12,
        "reproducer did not minimize: {live} live instructions\n{}",
        rmt::verify::shrink::to_asm(&finding.shrunk)
    );

    // The same program verifies cleanly with the bug disabled: the
    // finding is the bug's, not the fuzzer's.
    let clean = CoreConfig::base();
    harness::verify_arrangement(
        Arrangement::Srt,
        clean,
        &std::rc::Rc::new(finding.shrunk.clone()),
        2_000,
    )
    .expect("reproducer must be clean without the planted bug");
}
