//! Property-based tests over the core data structures and invariants,
//! driven by the in-repo harness (`rmt::stats::check`) — the workspace
//! builds offline, so it cannot depend on an external property-testing
//! crate. A failure prints the case seed; replay it with
//! `Xoshiro256::seed_from(seed)`.

use rmt::core::comparator::CompareOutcome;
use rmt::core::{LinePredictionQueue, LoadValueQueue, StoreComparator};
use rmt::isa::inst::{Inst, Reg, ALL_OPS};
use rmt::isa::MemImage;
use rmt::pipeline::chunk::ChunkAggregator;
use rmt::stats::check::{cases_from_env, gen_vec, run_cases, DEFAULT_CASES};
use rmt::stats::{Histogram, Xoshiro256};
use std::collections::HashMap;

fn cases() -> u64 {
    cases_from_env(DEFAULT_CASES)
}

fn gen_reg(rng: &mut Xoshiro256) -> Reg {
    Reg::new(rng.below(64) as u8)
}

fn gen_inst(rng: &mut Xoshiro256) -> Inst {
    let op = ALL_OPS[rng.below(ALL_OPS.len() as u64) as usize];
    let (rd, rs1, rs2) = (gen_reg(rng), gen_reg(rng), gen_reg(rng));
    let imm = rng.next_u64() as i32 as i64;
    Inst::new(op, rd, rs1, rs2, imm)
}

#[test]
fn inst_encode_decode_roundtrip() {
    run_cases("inst encode/decode roundtrip", cases(), 0x1001, |rng| {
        let inst = gen_inst(rng);
        let decoded = Inst::decode(inst.encode()).unwrap();
        assert_eq!(inst, decoded);
    });
}

#[test]
fn exec_is_deterministic() {
    run_cases("execute is deterministic", cases(), 0x1002, |rng| {
        let inst = gen_inst(rng);
        let pc = (rng.next_u64() as u32 as u64) & !3;
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let x = rmt::isa::execute(&inst, pc, a, b);
        let y = rmt::isa::execute(&inst, pc, a, b);
        assert_eq!(x, y);
    });
}

#[test]
fn mem_image_matches_hashmap_model() {
    run_cases("mem image matches hashmap model", cases(), 0x1003, |rng| {
        // Addresses confined to 64 KiB so collisions actually happen.
        let ops = gen_vec(rng, 1, 199, |r| {
            (r.next_u64() as u16, r.next_u64(), r.chance(0.5))
        });
        let mut img = MemImage::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, value, word) in ops {
            let addr = addr as u64;
            if word {
                img.write_u64(addr, value);
                for i in 0..8 {
                    model.insert(addr + i, (value >> (8 * i)) as u8);
                }
            } else {
                img.write_u8(addr, value as u8);
                model.insert(addr, value as u8);
            }
        }
        for (&a, &expect) in &model {
            assert_eq!(img.read_u8(a), expect);
        }
    });
}

#[test]
fn mem_image_digest_is_content_function() {
    run_cases(
        "mem image digest is a content function",
        cases(),
        0x1004,
        |rng| {
            // Writing the same contents in any order produces the same digest.
            let writes = gen_vec(rng, 1, 49, |r| (r.next_u64() as u16, r.next_u64()));
            let mut a = MemImage::new();
            for &(addr, v) in &writes {
                a.write_u64(addr as u64, v);
            }
            let mut b = MemImage::new();
            for &(addr, v) in writes.iter().rev() {
                b.write_u64(addr as u64, v);
            }
            // Later writes win; replay forward on b to converge.
            for &(addr, v) in &writes {
                b.write_u64(addr as u64, v);
            }
            assert_eq!(a.digest(), b.digest());
        },
    );
}

#[test]
fn chunk_aggregator_reconstructs_the_commit_stream() {
    run_cases(
        "chunk aggregator partitions the stream",
        cases(),
        0x1005,
        |rng| {
            // A random walk of (block length 1..=11, taken target) pairs.
            let blocks = gen_vec(rng, 1, 39, |r| (r.range(1, 11), r.next_u64() as u16));
            // Build the retired (pc, next_pc) stream.
            let mut stream = Vec::new();
            let mut pc = 0u64;
            for &(len, target) in &blocks {
                for i in 0..len {
                    let next = if i == len - 1 {
                        (target as u64) * 4
                    } else {
                        pc + 4
                    };
                    stream.push((pc, next));
                    pc = next;
                }
            }
            let mut agg = ChunkAggregator::new(8);
            let mut chunks = Vec::new();
            for &(pc, next) in &stream {
                agg.push(pc, next, 0, &mut chunks);
            }
            agg.force_terminate(&mut chunks);
            // Invariant 1: chunks partition the stream exactly.
            let total: usize = chunks.iter().map(|c| c.len).sum();
            assert_eq!(total, stream.len());
            // Invariant 2: every chunk is contiguous and at most 8 long.
            let mut idx = 0;
            for c in &chunks {
                assert!(c.len >= 1 && c.len <= 8);
                for k in 0..c.len {
                    assert_eq!(stream[idx].0, c.start_pc + 4 * k as u64);
                    idx += 1;
                }
                // Invariant 3: a chunk never continues across a taken branch.
                for k in 0..c.len - 1 {
                    let within = c.start_pc + 4 * k as u64;
                    assert_eq!(stream[idx - c.len + k].1, within + 4);
                }
            }
        },
    );
}

#[test]
fn lvq_is_an_exact_tag_map() {
    run_cases("lvq is an exact tag map", cases(), 0x1006, |rng| {
        let entries = gen_vec(rng, 1, 31, |r| (r.next_u64(), r.next_u64()));
        let lookups = gen_vec(rng, 1, 31, |r| r.next_u64() as usize);
        let mut lvq = LoadValueQueue::new(64);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, &(addr, value)) in entries.iter().enumerate() {
            let tag = i as u64;
            assert!(lvq.push(tag, addr, value, 8, 0));
            model.insert(tag, value);
        }
        for &l in &lookups {
            let tag = (l % entries.len()) as u64;
            match lvq.lookup(tag, 0) {
                Some(e) => {
                    assert_eq!(Some(&e.value), model.get(&tag));
                    lvq.consume(tag);
                    model.remove(&tag);
                }
                None => assert!(!model.contains_key(&tag)),
            }
        }
    });
}

#[test]
fn lpq_protocol_never_loses_or_reorders() {
    run_cases("lpq never loses or reorders", cases(), 0x1007, |rng| {
        let n = rng.range(1, 19) as usize;
        let rollback_at = rng.next_u64() as usize;
        let mut lpq = LinePredictionQueue::new(32);
        for i in 0..n {
            let c = rmt::pipeline::chunk::RetiredChunk {
                start_pc: i as u64 * 32,
                len: 4,
                halves: [0; 8],
            };
            assert!(lpq.push(c, 0));
        }
        let mut seen = Vec::new();
        let mut did_rollback = false;
        while let Some(c) = lpq.peek(0) {
            lpq.ack();
            if !did_rollback && seen.len() == rollback_at % n {
                // One i-cache miss somewhere in the stream.
                lpq.rollback();
                did_rollback = true;
                continue;
            }
            lpq.fetch_done();
            seen.push(c.start_pc);
        }
        assert_eq!(seen.len(), n);
        for (i, &pc) in seen.iter().enumerate() {
            assert_eq!(pc, i as u64 * 32);
        }
    });
}

#[test]
fn comparator_matches_iff_streams_equal() {
    run_cases(
        "comparator matches iff streams equal",
        cases(),
        0x1008,
        |rng| {
            let stores = gen_vec(rng, 1, 39, |r| (r.next_u64(), r.next_u64(), r.chance(0.5)));
            let mut cmp = StoreComparator::new();
            for (i, &(addr, value, corrupt)) in stores.iter().enumerate() {
                let tag = i as u64;
                cmp.record_trailing(tag, addr, value, 8, 0);
                let lead_value = if corrupt { value ^ 1 } else { value };
                let out = cmp.check(tag, addr, lead_value, 8, 0);
                if corrupt {
                    assert_eq!(out, CompareOutcome::Mismatch);
                } else {
                    assert_eq!(out, CompareOutcome::Match);
                }
            }
            let corrupted = stores.iter().filter(|s| s.2).count() as u64;
            assert_eq!(cmp.mismatches(), corrupted);
            assert_eq!(cmp.matches(), stores.len() as u64 - corrupted);
        },
    );
}

#[test]
fn histogram_mean_matches_naive_mean() {
    run_cases(
        "histogram mean matches naive mean",
        cases(),
        0x1009,
        |rng| {
            let samples = gen_vec(rng, 1, 99, |r| r.below(10_000));
            let mut h = Histogram::new("t", 64, 32);
            for &s in &samples {
                h.record(s);
            }
            let naive = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
            assert!((h.mean() - naive).abs() < 1e-9);
            assert_eq!(h.count(), samples.len() as u64);
            assert_eq!(h.min(), samples.iter().min().copied());
            assert_eq!(h.max(), samples.iter().max().copied());
        },
    );
}

/// Disassemble → reassemble round trip for arbitrary non-control
/// instructions (control targets print as absolute PCs, covered by the
/// unit tests in `rmt_isa::asm`).
#[test]
fn disasm_asm_roundtrip() {
    run_cases(
        "disasm/asm roundtrip (non-control)",
        cases(),
        0x100a,
        |rng| {
            let inst = loop {
                let i = gen_inst(rng);
                if !i.op.is_control() {
                    break i;
                }
            };
            // Clamp the immediate to the 32-bit range `encode` guarantees.
            let inst = Inst::new(inst.op, inst.rd, inst.rs1, inst.rs2, inst.imm as i32 as i64);
            let text = rmt::isa::disasm::disassemble(&inst);
            let p = rmt::isa::asm::assemble(&text).unwrap();
            let got = p.fetch(0).unwrap();
            assert_eq!(got.op, inst.op, "{text}");
            // Operand fields that the op actually uses must survive.
            if inst.writes_reg() {
                assert_eq!(got.rd, inst.rd, "{text}");
            }
            let (s1, s2) = inst.sources();
            if let Some(r) = s1 {
                assert_eq!(got.rs1, r, "{text}");
            }
            if let Some(r) = s2 {
                assert_eq!(got.rs2, r, "{text}");
            }
        },
    );
}

/// Differential: random *structured* programs (straight-line blocks with
/// bounded loops) retire identically on the pipeline and the reference
/// interpreter. Heavier than the structural properties, so fewer cases.
#[test]
fn pipeline_matches_interpreter_on_random_programs() {
    run_cases(
        "pipeline matches interpreter",
        cases_from_env(16),
        0x100b,
        |rng| {
            use rmt::isa::program::ProgramBuilder;
            let mut b = ProgramBuilder::new();
            let r = |i: u64| Reg::new(1 + (i % 20) as u8);
            // Prologue: seed registers.
            for i in 0..8 {
                b.push(Inst::addi(r(i), Reg::ZERO, rng.range(0, 1000) as i64));
            }
            // A bounded loop with a random body.
            b.push(Inst::addi(Reg::new(30), Reg::ZERO, 0));
            b.push(Inst::addi(Reg::new(31), Reg::ZERO, 40));
            b.label("loop");
            for _ in 0..rng.range(4, 20) {
                let (d, s1, s2) = (r(rng.below(20)), r(rng.below(20)), r(rng.below(20)));
                match rng.below(6) {
                    0 => b.push(Inst::add(d, s1, s2)),
                    1 => b.push(Inst::mul(d, s1, s2)),
                    2 => b.push(Inst::xor(d, s1, s2)),
                    3 => b.push(Inst::sw(s1, Reg::ZERO, 0x20000 + 8 * rng.below(32) as i64)),
                    4 => b.push(Inst::lw(d, Reg::ZERO, 0x20000 + 8 * rng.below(32) as i64)),
                    _ => b.push(Inst::slli(d, s1, rng.below(8) as i64)),
                }
            }
            b.push(Inst::addi(Reg::new(30), Reg::new(30), 1));
            b.push_branch(Inst::blt(Reg::new(30), Reg::new(31), 0), "loop");
            b.push(Inst::halt());
            let program = b.build().unwrap();

            let mut interp = rmt::isa::interp::Interpreter::new(&program, MemImage::new());
            interp.run(1_000_000).unwrap();

            use rmt::pipeline::env::IndependentEnv;
            let mut env = IndependentEnv::new(vec![MemImage::new()]);
            let mut core = rmt::pipeline::Core::new(rmt::pipeline::CoreConfig::base(), 0);
            core.attach_thread(std::rc::Rc::new(program.clone()), 0);
            core.finalize_partitions();
            let mut hier = rmt::mem::MemoryHierarchy::new(Default::default(), 1);
            let mut cycle = 0u64;
            while !(core.all_halted() && core.in_flight(0) == 0) {
                core.tick(cycle, &mut hier, &mut env);
                hier.tick(cycle);
                cycle += 1;
                assert!(cycle < 2_000_000, "pipeline did not finish");
            }
            for c in cycle..cycle + 2_000 {
                core.tick(c, &mut hier, &mut env);
                hier.tick(c);
            }
            assert_eq!(core.thread_stats(0).committed, interp.committed());
            assert_eq!(env.image(0, 0).digest(), interp.mem().digest());
            for i in 0..20 {
                assert_eq!(core.arch_reg(0, r(i)), interp.state().reg(r(i)));
            }
        },
    );
}
