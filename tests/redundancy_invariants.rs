//! Cross-crate integration tests: the architectural invariants redundant
//! multithreading must uphold, checked end-to-end through the whole stack
//! (workload generator → pipeline → RMT device → golden model).

use rmt::core::crt::CrtDevice;
use rmt::core::device::{BaseDevice, Device, LogicalThread, SrtDevice, SrtOptions};
use rmt::core::lockstep::{LockstepDevice, LockstepOptions};
use rmt::isa::interp::Interpreter;
use rmt::pipeline::CoreConfig;
use rmt::workloads::{Benchmark, Workload};

/// Runs the golden interpreter until it has committed exactly `stores`
/// stores; returns its memory digest.
fn golden_digest_at_stores(w: &Workload, stores: u64) -> u64 {
    let mut interp = Interpreter::new(&w.program, w.memory.clone());
    let mut n = 0;
    while n < stores {
        if interp.step().unwrap().store.is_some() {
            n += 1;
        }
    }
    interp.mem().digest()
}

#[test]
fn srt_released_stores_equal_golden_prefix() {
    // The strongest redundancy invariant: everything SRT lets out of the
    // sphere of replication is exactly the golden store stream.
    for &b in &[Benchmark::Compress, Benchmark::Gcc, Benchmark::Swim] {
        let w = Workload::generate(b, 21);
        let mut dev = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        assert!(dev.run_until_committed(20_000, 10_000_000), "{b} timed out");
        let released = dev.core().stats().get("stores_released");
        assert!(released > 100, "{b}: too few stores to be meaningful");
        assert_eq!(
            dev.image(0).digest(),
            golden_digest_at_stores(&w, released),
            "{b}: SRT memory diverged from the golden model"
        );
        assert!(dev.drain_detected_faults().is_empty(), "{b}: phantom fault");
    }
}

#[test]
fn crt_released_stores_equal_golden_prefix() {
    let a = Workload::generate(Benchmark::Ijpeg, 5);
    let b = Workload::generate(Benchmark::Fpppp, 5);
    let mut dev = CrtDevice::new(
        CrtDevice::default_options(),
        vec![LogicalThread::from(&a), LogicalThread::from(&b)],
    );
    assert!(dev.run_until_committed(15_000, 20_000_000));
    for (i, w) in [&a, &b].into_iter().enumerate() {
        let p = dev.placement(i);
        let released: u64 = dev.core(p.lead_core).store_lifetime(p.lead_tid).count();
        assert!(released > 50, "pair {i}: too few stores");
        assert_eq!(
            dev.image(i).digest(),
            golden_digest_at_stores(w, released),
            "pair {i}: CRT memory diverged from golden"
        );
    }
    assert!(dev.drain_detected_faults().is_empty());
}

#[test]
fn base_and_srt_memories_agree_at_equal_store_counts() {
    // Redundant execution must be architecturally invisible: base and SRT
    // runs of the same program produce identical store prefixes.
    let w = Workload::generate(Benchmark::Vortex, 13);
    let mut base = BaseDevice::new(
        CoreConfig::base(),
        Default::default(),
        vec![LogicalThread::from(&w)],
    );
    assert!(base.run_until_committed(15_000, 10_000_000));
    let mut srt = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
    assert!(srt.run_until_committed(15_000, 10_000_000));
    let base_released = base.core().stats().get("stores_released");
    let srt_released = srt.core().stats().get("stores_released");
    let common = base_released.min(srt_released);
    assert_eq!(
        golden_digest_at_stores(&w, common),
        golden_digest_at_stores(&w, common)
    );
    // Both equal the same golden prefix at their own release counts.
    assert_eq!(
        base.image(0).digest(),
        golden_digest_at_stores(&w, base_released)
    );
    assert_eq!(
        srt.image(0).digest(),
        golden_digest_at_stores(&w, srt_released)
    );
}

#[test]
fn trailing_thread_is_sheltered() {
    // §4/§5: the trailing thread never misspeculates (LPQ), never touches
    // the data cache, and never misses the LVQ address check.
    let w = Workload::generate(Benchmark::Go, 17);
    let mut dev = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(15_000, 10_000_000));
    let (lead, trail) = dev.pair_tids(0);
    assert_eq!(dev.core().thread_stats(trail).squashes, 0);
    assert!(
        dev.core().thread_stats(lead).squashes > 0,
        "go must mispredict"
    );
    // Trailing commits track leading commits.
    let lead_n = dev.core().thread_stats(lead).committed;
    let trail_n = dev.core().thread_stats(trail).committed;
    assert!(trail_n <= lead_n);
    assert!(
        lead_n - trail_n < 2_000,
        "slack unbounded: {lead_n} vs {trail_n}"
    );
}

#[test]
fn lockstep_cores_stay_bit_identical() {
    let w = Workload::generate(Benchmark::Perl, 3);
    let mut dev = LockstepDevice::new(LockstepOptions::lock8(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(15_000, 10_000_000));
    assert!(!dev.desynced());
    assert!(dev.drain_detected_faults().is_empty());
    assert_eq!(
        dev.core(0).thread_stats(0).committed,
        dev.core(1).thread_stats(0).committed
    );
    assert_eq!(
        dev.core(0).stats().get("squashes"),
        dev.core(1).stats().get("squashes")
    );
}

#[test]
fn srt_handles_all_eighteen_benchmarks() {
    // Smoke: every benchmark runs redundantly without deadlock, divergence
    // or phantom detections.
    for &b in rmt::workloads::profile::ALL_BENCHMARKS {
        let w = Workload::generate(b, 2);
        let mut dev = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        assert!(dev.run_until_committed(4_000, 10_000_000), "{b} timed out");
        assert!(dev.drain_detected_faults().is_empty(), "{b}: phantom fault");
        assert_eq!(dev.env().pair(0).comparator.mismatches(), 0, "{b}");
    }
}

#[test]
fn per_thread_store_queues_never_hurt() {
    for &b in &[Benchmark::Swim, Benchmark::Compress] {
        let w = Workload::generate(b, 7);
        let mut plain = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        assert!(plain.run_until_committed(10_000, 10_000_000));
        let mut ptsq_opts = SrtOptions::default();
        ptsq_opts.core.per_thread_store_queues = true;
        let mut ptsq = SrtDevice::new(ptsq_opts, vec![LogicalThread::from(&w)]);
        assert!(ptsq.run_until_committed(10_000, 10_000_000));
        assert!(
            ptsq.cycle() <= plain.cycle() + plain.cycle() / 20,
            "{b}: ptsq should not slow SRT down: {} vs {}",
            ptsq.cycle(),
            plain.cycle()
        );
    }
}

#[test]
fn four_context_srt_runs_two_programs() {
    // §7.1's multithreaded SRT configuration: two logical programs as two
    // redundant pairs filling all four hardware contexts.
    let a = Workload::generate(Benchmark::Gcc, 9);
    let b = Workload::generate(Benchmark::Swim, 9);
    let mut dev = SrtDevice::new(
        SrtOptions::default(),
        vec![LogicalThread::from(&a), LogicalThread::from(&b)],
    );
    assert!(dev.run_until_committed(8_000, 20_000_000));
    assert!(dev.drain_detected_faults().is_empty());
    for i in 0..2 {
        assert_eq!(dev.env().pair(i).comparator.mismatches(), 0);
        assert!(dev.env().pair(i).comparator.matches() > 50);
    }
}

#[test]
fn four_independent_threads_stay_isolated() {
    // Full SMT occupancy on the base machine: every thread's memory image
    // must match its own single-thread golden model exactly — no cross-
    // thread leakage through any shared structure.
    let benches = [
        Benchmark::Gcc,
        Benchmark::Ijpeg,
        Benchmark::Fpppp,
        Benchmark::Swim,
    ];
    let ws: Vec<Workload> = benches.iter().map(|&b| Workload::generate(b, 31)).collect();
    let mut dev = BaseDevice::new(
        CoreConfig::base(),
        Default::default(),
        ws.iter().map(LogicalThread::from).collect(),
    );
    assert!(dev.run_until_committed(10_000, 30_000_000));
    for (i, w) in ws.iter().enumerate() {
        let committed = dev.committed(i);
        let mut interp = Interpreter::new(&w.program, w.memory.clone());
        interp.run(committed).unwrap();
        assert_eq!(
            dev.image(i).digest(),
            interp.mem().digest(),
            "{}: leaked state across hardware threads",
            benches[i]
        );
    }
}

#[test]
fn crt_slack_is_bounded_by_queue_capacities() {
    let w = Workload::generate(Benchmark::Swim, 8);
    let mut dev = CrtDevice::new(CrtDevice::default_options(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(20_000, 20_000_000));
    let pair = dev.env().pair(0);
    // The LVQ (64 loads) bounds slack: with ~27% loads the ceiling is a few
    // hundred instructions.
    assert!(
        pair.slack.max().unwrap_or(0) < 1_000,
        "slack {:?}",
        pair.slack.max()
    );
    assert!(pair.lvq.peak() <= 64);
    assert!(pair.slack.mean() > 1.0, "threads suspiciously lock-stepped");
}
