//! Replays the committed fuzz corpus (`tests/corpus/*.rmt`) — minimized
//! reproducers the fuzzer once shrank from real divergences — on every
//! redundancy arrangement under the co-simulation oracle.
//!
//! Two properties are pinned:
//!
//! 1. With the default (sound) core configuration, every corpus program
//!    verifies cleanly on all six arrangements: the bugs they reproduce
//!    stay fixed (or, for the chaos-planted one, stay gated off).
//! 2. With the planted `chaos_lb_unmasked` bug re-enabled, each corpus
//!    program still trips the oracle on the arrangement it was found on —
//!    the regression files remain live reproducers, not dead weight.

use rmt::pipeline::CoreConfig;
use rmt::verify::{harness, Arrangement};
use std::rc::Rc;

const COMMITS: u64 = 2_000;

fn corpus() -> Vec<(String, Rc<rmt::isa::Program>)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read tests/corpus")
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rmt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "tests/corpus holds no .rmt files");
    files
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("read corpus file");
            let program = rmt::isa::asm::assemble(&text)
                .unwrap_or_else(|e| panic!("{name} does not assemble: {e}"));
            (name, Rc::new(program))
        })
        .collect()
}

#[test]
fn corpus_replays_clean_on_every_arrangement() {
    for (name, program) in corpus() {
        for arr in Arrangement::ALL {
            if let Err(d) = harness::verify_arrangement(arr, CoreConfig::base(), &program, COMMITS)
            {
                panic!("{name} diverged on {}:\n{}", arr.name(), d.render());
            }
        }
    }
}

#[test]
fn corpus_still_trips_the_planted_bug() {
    let mut chaos = CoreConfig::base();
    chaos.chaos_lb_unmasked = true;
    for (name, program) in corpus() {
        assert!(
            harness::verify_arrangement(Arrangement::Srt, chaos.clone(), &program, COMMITS)
                .is_err(),
            "{name} no longer reproduces under chaos_lb_unmasked; regenerate the corpus"
        );
    }
}
