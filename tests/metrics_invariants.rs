//! Invariants of the metrics layer, checked end-to-end through real
//! devices: cycle accounting must conserve issue slots (every slot of
//! every cycle attributed to exactly one category), snapshots must be
//! reproducible, and the JSON rendering must round-trip.

use rmt::core::crt::CrtDevice;
use rmt::core::device::{BaseDevice, Device, LogicalThread, SrtDevice, SrtOptions};
use rmt::core::lockstep::{LockstepDevice, LockstepOptions};
use rmt::core::recovery::RecoverableSrt;
use rmt::pipeline::CoreConfig;
use rmt::stats::{MetricsRegistry, MetricsSnapshot};
use rmt::workloads::{Benchmark, Workload};

fn snapshot(dev: &dyn Device) -> MetricsSnapshot {
    let mut reg = MetricsRegistry::new();
    dev.export_metrics(&mut reg);
    reg.snapshot()
}

const SLOT_COUNTERS: [&str; 7] = [
    "issued",
    "window_empty",
    "data_wait",
    "structural_fu",
    "structural_iq_half",
    "squash_recovery",
    "sphere_wait",
];

/// Every issue slot of every cycle is attributed to exactly one category:
/// the seven slot counters must total `issue_width × cycles`.
fn assert_conservation(snap: &MetricsSnapshot, core_prefixes: &[&str]) {
    let width = CoreConfig::base().issue_width as u64;
    for prefix in core_prefixes {
        let cycles = snap
            .counter(&format!("{prefix}/cycles"))
            .unwrap_or_else(|| panic!("missing `{prefix}/cycles`"));
        assert!(cycles > 0, "`{prefix}` never ticked");
        let total: u64 = SLOT_COUNTERS
            .iter()
            .map(|slot| {
                snap.counter(&format!("{prefix}/slots/{slot}"))
                    .unwrap_or_else(|| panic!("missing `{prefix}/slots/{slot}`"))
            })
            .sum();
        assert_eq!(
            total,
            width * cycles,
            "`{prefix}`: {total} attributed slots over {cycles} cycles at width {width}"
        );
        assert!(
            snap.counter(&format!("{prefix}/slots/issued")).unwrap() > 0,
            "`{prefix}` issued nothing"
        );
    }
}

#[test]
fn base_device_conserves_issue_slots() {
    let w = Workload::generate(Benchmark::Gcc, 5);
    let mut dev = BaseDevice::new(
        CoreConfig::base(),
        Default::default(),
        vec![LogicalThread::from(&w)],
    );
    assert!(dev.run_until_committed(8_000, 4_000_000));
    let snap = snapshot(&dev);
    assert_conservation(&snap, &["core0"]);
}

#[test]
fn srt_device_conserves_issue_slots_and_exports_rmt_state() {
    let w = Workload::generate(Benchmark::Compress, 5);
    let mut dev = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(8_000, 4_000_000));
    let snap = snapshot(&dev);
    assert_conservation(&snap, &["core0"]);
    // The redundant pair's sphere-of-replication state is visible.
    assert!(snap.counter("rmt/pair0/comparator/matches").unwrap() > 0);
    assert!(snap.histogram("rmt/pair0/lvq/occupancy").is_some());
    assert!(snap.histogram("rmt/pair0/slack").is_some());
    // A trailing thread exists, so some slots waited on the sphere.
    let _ = snap.counter("core0/slots/sphere_wait").unwrap();
}

#[test]
fn crt_device_conserves_issue_slots_on_both_cores() {
    let w = Workload::generate(Benchmark::Swim, 5);
    let mut dev = CrtDevice::new(CrtDevice::default_options(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(6_000, 6_000_000));
    let snap = snapshot(&dev);
    assert_conservation(&snap, &["core0", "core1"]);
    assert!(snap.counter("rmt/pair0/comparator/matches").unwrap() > 0);
}

#[test]
fn lockstep_device_conserves_issue_slots_on_both_cores() {
    let w = Workload::generate(Benchmark::Ijpeg, 5);
    let mut dev = LockstepDevice::new(LockstepOptions::lock8(), vec![LogicalThread::from(&w)]);
    assert!(dev.run_until_committed(6_000, 6_000_000));
    let snap = snapshot(&dev);
    assert_conservation(&snap, &["core0", "core1"]);
    // The checker compared outputs and the cores never drifted apart.
    assert!(snap.counter("checker/compared_stores").unwrap() > 0);
    assert_eq!(snap.counter("checker/desynced"), Some(0));
}

#[test]
fn recoverable_srt_conserves_issue_slots_and_exports_recovery_state() {
    let w = Workload::generate(Benchmark::M88ksim, 5);
    let mut dev = RecoverableSrt::new(SrtOptions::default(), vec![LogicalThread::from(&w)], 3_000);
    assert!(dev.run_until_committed(8_000, 6_000_000));
    let snap = snapshot(&dev);
    // Conservation must survive the checkpoint quiesce windows, where
    // fetch is paused but cycles keep ticking.
    assert_conservation(&snap, &["core0"]);
    assert!(snap.counter("rmt/pair0/comparator/matches").unwrap() > 0);
    assert!(snap.counter("recovery/checkpoints_taken").unwrap() >= 1);
    assert_eq!(snap.counter("recovery/recoveries"), Some(0));
}

#[test]
fn snapshots_are_reproducible_and_json_round_trips() {
    let run = || {
        let w = Workload::generate(Benchmark::M88ksim, 9);
        let mut dev = SrtDevice::new(SrtOptions::default(), vec![LogicalThread::from(&w)]);
        assert!(dev.run_until_committed(5_000, 3_000_000));
        snapshot(&dev)
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "identical runs must produce identical snapshots");
    let encoded = a.to_json().encode_pretty();
    let parsed = rmt::stats::json::parse(&encoded).expect("snapshot JSON parses");
    assert_eq!(
        parsed.get("device/cycles").and_then(|v| v.as_u64()),
        a.counter("device/cycles")
    );
}

#[test]
fn occupancy_histograms_track_live_queues() {
    let w = Workload::generate(Benchmark::Fpppp, 3);
    let mut dev = BaseDevice::new(
        CoreConfig::base(),
        Default::default(),
        vec![LogicalThread::from(&w)],
    );
    assert!(dev.run_until_committed(5_000, 3_000_000));
    let snap = snapshot(&dev);
    for q in ["iq_half0", "iq_half1", "lq", "sq", "rmb"] {
        let h = snap
            .histogram(&format!("core0/occupancy/{q}"))
            .unwrap_or_else(|| panic!("missing occupancy histogram for {q}"));
        assert!(h.count > 0, "{q} occupancy never sampled");
    }
}
