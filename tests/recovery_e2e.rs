//! End-to-end recovery: after a detected fault triggers rollback-and-
//! replay, the machine's architectural history must be *indistinguishable*
//! from a fault-free run — the golden model's store stream, exactly.

use rmt::core::device::{Device, LogicalThread, SrtOptions};
use rmt::core::recovery::RecoverableSrt;
use rmt::isa::interp::Interpreter;
use rmt::workloads::{Benchmark, Workload};

fn golden_digest_at_stores(w: &Workload, stores: u64) -> u64 {
    let mut interp = Interpreter::new(&w.program, w.memory.clone());
    let mut n = 0;
    while n < stores {
        if interp.step().unwrap().store.is_some() {
            n += 1;
        }
    }
    interp.mem().digest()
}

fn recoverable(bench: Benchmark, seed: u64, interval: u64) -> (Workload, RecoverableSrt) {
    let w = Workload::generate(bench, seed);
    let dev = RecoverableSrt::new(
        SrtOptions::default(),
        vec![LogicalThread::from(&w)],
        interval,
    );
    (w, dev)
}

/// Stores reflected in pair 0's memory (releases minus those undone by
/// recovery rollbacks).
fn released(dev: &RecoverableSrt) -> u64 {
    dev.effective_releases(0)
}

#[test]
fn store_strike_is_recovered_exactly() {
    let (w, mut dev) = recoverable(Benchmark::Swim, 3, 4_000);
    assert!(dev.run_until_committed(6_000, 30_000_000));
    dev.core_mut().arm_sq_strike(0, 1 << 11);
    assert!(dev.run_until_committed(40_000, 120_000_000));
    assert_eq!(
        dev.recoveries(),
        1,
        "the strike must be detected and recovered"
    );
    // The acid test: memory equals the golden prefix as if nothing happened.
    assert_eq!(
        dev.image(0).digest(),
        golden_digest_at_stores(&w, released(&dev)),
        "recovery left an architectural trace"
    );
}

#[test]
fn register_strikes_are_recovered_exactly() {
    use rmt::stats::Xoshiro256;
    let (w, mut dev) = recoverable(Benchmark::M88ksim, 5, 4_000);
    assert!(dev.run_until_committed(5_000, 30_000_000));
    let mut rng = Xoshiro256::seed_from(99);
    let mut recovered = 0;
    for round in 0..4 {
        // Strike a live register each round.
        let live = dev.core().live_phys_regs();
        let reg = live[rng.below(live.len() as u64) as usize];
        dev.core_mut().corrupt_phys_reg(reg, 1 << rng.below(64));
        let target = dev.committed(0) + 10_000;
        assert!(
            dev.run_until_committed(target, 200_000_000),
            "round {round} stalled"
        );
        recovered = dev.recoveries();
    }
    // Some strikes mask; any that were detected must have recovered with
    // golden-equivalent state.
    assert_eq!(
        dev.image(0).digest(),
        golden_digest_at_stores(&w, released(&dev)),
        "after {recovered} recoveries the state diverged"
    );
}

#[test]
fn repeated_strikes_keep_recovering() {
    let (w, mut dev) = recoverable(Benchmark::Compress, 7, 3_000);
    assert!(dev.run_until_committed(4_000, 30_000_000));
    for _ in 0..3 {
        dev.core_mut().arm_sq_strike(0, 1 << 21);
        let target = dev.committed(0) + 8_000;
        assert!(dev.run_until_committed(target, 200_000_000));
    }
    assert_eq!(dev.recoveries(), 3);
    assert_eq!(
        dev.image(0).digest(),
        golden_digest_at_stores(&w, released(&dev))
    );
}

#[test]
fn fault_free_recoverable_srt_matches_plain_srt_architecturally() {
    let (w, mut dev) = recoverable(Benchmark::Gcc, 11, 5_000);
    assert!(dev.run_until_committed(25_000, 60_000_000));
    assert_eq!(dev.recoveries(), 0);
    assert!(dev.checkpoints_taken() >= 3);
    assert_eq!(
        dev.image(0).digest(),
        golden_digest_at_stores(&w, released(&dev))
    );
}
